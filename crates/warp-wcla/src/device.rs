//! The WCLA as an OPB peripheral.
//!
//! The patched binary communicates with the WCLA "using the on-chip
//! peripheral bus" (paper Section 3): it writes the trip count, stream
//! base addresses, accumulator seeds, and invariant values into
//! memory-mapped registers, starts the hardware, and then performs a
//! *blocking* status read — the OPB holds the MicroBlaze in wait states
//! (idle, for the energy model) until the loop-control hardware raises
//! done. Accumulator results are read back through the same window.

use std::sync::{Arc, Mutex};

use mb_sim::{Bram, BusResponse, Peripheral};

use crate::executor::{self, ExecScratch};
use crate::WclaCircuit;

/// OPB base address of the WCLA register window.
pub const WCLA_BASE: u32 = 0x8000_0100;
/// Size of the register window in bytes.
pub const WCLA_WINDOW: u32 = 0x100;

/// Register offsets within the window.
pub mod regs {
    /// Write: start hardware execution.
    pub const CTRL: u32 = 0x00;
    /// Read: done flag; the read blocks (bus wait states) for the whole
    /// hardware execution.
    pub const STATUS: u32 = 0x04;
    /// Write: trip count.
    pub const COUNT: u32 = 0x08;
    /// Write: stream base address `i` (i < 3): `BASE0 + 4*i`.
    pub const BASE0: u32 = 0x0C;
    /// Accumulator `k` seed (write) / result (read): `ACC0 + 4*k`.
    pub const ACC0: u32 = 0x20;
    /// Invariant `k` value (write): `INV0 + 4*k`.
    pub const INV0: u32 = 0x40;
}

/// Cumulative hardware activity (drives the energy model).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WclaStats {
    /// Hardware invocations.
    pub invocations: u64,
    /// Total kernel iterations executed in hardware.
    pub iterations: u64,
    /// Total fabric cycles.
    pub fabric_cycles: u64,
    /// Total MicroBlaze cycles spent stalled on the blocking read.
    pub mb_stall_cycles: u64,
    /// DADG loads.
    pub loads: u64,
    /// DADG stores.
    pub stores: u64,
}

impl WclaStats {
    /// Hardware-active seconds at the given fabric clock.
    #[must_use]
    pub fn hw_seconds(&self, fabric_clock_hz: u64) -> f64 {
        self.fabric_cycles as f64 / fabric_clock_hz as f64
    }
}

/// The WCLA peripheral instance.
pub struct WclaDevice {
    circuit: WclaCircuit,
    mb_clock_hz: u64,
    count: u32,
    bases: [u32; 3],
    accs: Vec<u32>,
    invs: Vec<u32>,
    pending_wait: u32,
    scratch: ExecScratch,
    stats: Arc<Mutex<WclaStats>>,
}

impl WclaDevice {
    /// Creates a device for a compiled circuit; returns the device and a
    /// shared handle to its activity statistics.
    ///
    /// The handle is `Arc<Mutex<_>>` rather than `Rc<RefCell<_>>`: the
    /// device is mapped into a [`System`](mb_sim::System) that a
    /// multi-session host migrates between worker threads, so the stats
    /// channel back to the orchestrator must be `Send`. The lock is
    /// uncontended in practice — the device mutates it from the bus and
    /// the orchestrator reads it between slices, never concurrently.
    #[must_use]
    pub fn new(circuit: WclaCircuit, mb_clock_hz: u64) -> (Self, Arc<Mutex<WclaStats>>) {
        let stats = Arc::new(Mutex::new(WclaStats::default()));
        let n_accs = circuit.kernel.accs.len();
        let n_invs = circuit.kernel.invariants.len();
        (
            WclaDevice {
                circuit,
                mb_clock_hz,
                count: 0,
                bases: [0; 3],
                accs: vec![0; n_accs],
                invs: vec![0; n_invs],
                pending_wait: 0,
                scratch: ExecScratch::default(),
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// The compiled circuit this device hosts.
    #[must_use]
    pub fn circuit(&self) -> &WclaCircuit {
        &self.circuit
    }

    fn run(&mut self, dmem: &mut Bram) {
        let kernel = &self.circuit.kernel;
        // The base registers hold the *initial* stream addresses; the
        // executor advances its cursors in a private copy so a re-start
        // without rewriting BASEi replays from the programmed bases,
        // exactly as the register file semantics demand.
        let mut ptrs = self.bases;
        let outcome = executor::execute_flat(
            kernel,
            &self.circuit.model,
            self.count,
            &mut ptrs[..kernel.streams.len()],
            &mut self.accs,
            &self.invs,
            dmem,
            &mut self.scratch,
        )
        .expect("hardware generated an address outside the data BRAM");

        // Convert hardware time into MicroBlaze stall cycles.
        let stall = (outcome.fabric_cycles as f64 * self.mb_clock_hz as f64
            / self.circuit.model.fabric_clock_hz as f64)
            .ceil() as u32;
        self.pending_wait = stall.max(1);

        let mut st = self.stats.lock().expect("wcla stats lock");
        st.invocations += 1;
        st.iterations += outcome.iterations;
        st.fabric_cycles += outcome.fabric_cycles;
        st.mb_stall_cycles += u64::from(self.pending_wait);
        st.loads += outcome.loads;
        st.stores += outcome.stores;
    }
}

impl Peripheral for WclaDevice {
    fn name(&self) -> &str {
        "wcla"
    }

    fn read(&mut self, offset: u32, _dmem: &mut Bram) -> BusResponse {
        match offset {
            regs::STATUS => {
                let wait = std::mem::take(&mut self.pending_wait);
                BusResponse { value: 1, wait }
            }
            o if (regs::ACC0..regs::ACC0 + 16).contains(&o) => {
                let k = ((o - regs::ACC0) / 4) as usize;
                BusResponse::immediate(self.accs.get(k).copied().unwrap_or(0))
            }
            _ => BusResponse::immediate(0),
        }
    }

    fn write(&mut self, offset: u32, value: u32, dmem: &mut Bram) -> u32 {
        match offset {
            regs::CTRL => self.run(dmem),
            regs::COUNT => self.count = value,
            o if (regs::BASE0..regs::BASE0 + 12).contains(&o) => {
                self.bases[((o - regs::BASE0) / 4) as usize] = value;
            }
            o if (regs::ACC0..regs::ACC0 + 16).contains(&o) => {
                let k = ((o - regs::ACC0) / 4) as usize;
                if k < self.accs.len() {
                    self.accs[k] = value;
                }
            }
            o if (regs::INV0..regs::INV0 + 16).contains(&o) => {
                let k = ((o - regs::INV0) / 4) as usize;
                if k < self.invs.len() {
                    self.invs[k] = value;
                }
            }
            _ => {}
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_cdfg::decompile_loop;

    #[test]
    fn device_runs_kernel_and_reports_stall() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let (circuit, _) = WclaCircuit::build(kernel).unwrap();
        let (mut dev, stats) = WclaDevice::new(circuit, 85_000_000);

        let mut dmem = Bram::new(64 * 1024);
        dmem.load_words(0x1000, &[0x8000_0000, 1, 0xFFFF_0000]).unwrap();

        dev.write(regs::COUNT, 3, &mut dmem);
        dev.write(regs::BASE0, 0x1000, &mut dmem);
        dev.write(regs::BASE0 + 4, 0x2000, &mut dmem);
        dev.write(regs::CTRL, 1, &mut dmem);

        // Results: bit reversal of the inputs.
        assert_eq!(dmem.read_word(0x2000).unwrap(), 0x0000_0001);
        assert_eq!(dmem.read_word(0x2004).unwrap(), 0x8000_0000);
        assert_eq!(dmem.read_word(0x2008).unwrap(), 0x0000_FFFF);

        // The status read stalls once, then is free.
        let r = dev.read(regs::STATUS, &mut dmem);
        assert_eq!(r.value, 1);
        assert!(r.wait > 0, "blocking read must stall the processor");
        let r2 = dev.read(regs::STATUS, &mut dmem);
        assert_eq!(r2.wait, 0);

        let st = stats.lock().unwrap();
        assert_eq!(st.invocations, 1);
        assert_eq!(st.iterations, 3);
        assert_eq!(st.loads, 3);
        assert_eq!(st.stores, 3);
        assert!(st.fabric_cycles > 0);
    }

    #[test]
    fn accumulator_seed_and_readback() {
        let built = workloads::by_name("crc32").unwrap().build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let (circuit, _) = WclaCircuit::build(kernel.clone()).unwrap();
        let (mut dev, _) = WclaDevice::new(circuit, 85_000_000);

        let mut dmem = Bram::new(4096);
        let msg = [5u32, 7, 11];
        dmem.load_words(0x100, &msg).unwrap();

        dev.write(regs::COUNT, 3, &mut dmem);
        dev.write(regs::BASE0, 0x100, &mut dmem);
        dev.write(regs::ACC0, 0xFFFF_FFFF, &mut dmem); // seed = initial state
        dev.write(regs::CTRL, 1, &mut dmem);

        let expected = msg.iter().fold(0xFFFF_FFFFu32, |s, &w| s.rotate_left(1) ^ w);
        assert_eq!(dev.read(regs::ACC0, &mut dmem).value, expected);
    }
}
