//! The WCLA hardware executor: cycle model and functional iteration.
//!
//! Per kernel iteration the DADG performs each load and store in one
//! fabric cycle against the dual-ported data BRAM, overlapped with the
//! fabric settle time of the previous values (the DADG prefetches the
//! next iteration's operands while the routed logic settles — a
//! multi-cycle combinational path held by the LCH); each MAC operation
//! then serializes for [`MAC_LATENCY`] cycles on
//! the single hard multiplier.
//!
//! Functional behaviour uses the mapped LUT netlist, whose equivalence
//! to the configuration bitstream is established by the fabric crate's
//! tests (evaluating the decoded bitstream for every iteration would be
//! needlessly slow; spot equivalence is checked per circuit at build
//! time).

use std::collections::BTreeMap;

use mb_isa::Reg;
use mb_sim::{Bram, MemError};
use warp_cdfg::KernelEnv;
use warp_fabric::CompiledCircuit;
use warp_synth::bits::InputWord;
use warp_synth::LutNetlist;

use crate::{FABRIC_CLOCK_HZ, MAC_LATENCY};

/// The derived cycle model for one compiled kernel.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExecModel {
    /// Fabric clock (Hz), capped by the WCLA ceiling.
    pub fabric_clock_hz: u64,
    /// DADG memory operations per iteration.
    pub mem_ops: u64,
    /// Fabric-settle cycles per iteration (multi-cycle path).
    pub compute_cycles: u64,
    /// MAC serialization cycles per iteration.
    pub mac_cycles: u64,
    /// Fixed per-invocation startup cycles (LCH arm + first addresses).
    pub startup_cycles: u64,
    /// Total cycles for one iteration.
    pub cycles_per_iteration: u64,
}

impl ExecModel {
    /// Derives the model from a compiled circuit.
    #[must_use]
    pub fn derive(
        kernel: &warp_cdfg::LoopKernel,
        netlist: &LutNetlist,
        compiled: &CompiledCircuit,
    ) -> Self {
        let fabric_clock_hz = FABRIC_CLOCK_HZ;
        let period_ns = 1e9 / fabric_clock_hz as f64;
        let compute_cycles = (compiled.timing.critical_path_ns / period_ns).ceil().max(1.0) as u64;
        let mem_ops = kernel.mem_ops_per_iter() as u64;
        let mac_cycles = netlist.macs().len() as u64 * MAC_LATENCY;
        ExecModel {
            fabric_clock_hz,
            mem_ops,
            compute_cycles,
            mac_cycles,
            startup_cycles: 4,
            // DADG memory traffic overlaps fabric settle; the MAC chain
            // serializes after both.
            cycles_per_iteration: mem_ops.max(compute_cycles) + mac_cycles,
        }
    }

    /// Fabric cycles to run `iterations` iterations.
    #[must_use]
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        self.startup_cycles + iterations * self.cycles_per_iteration
    }

    /// Wall-clock seconds for `iterations`.
    #[must_use]
    pub fn seconds(&self, iterations: u64) -> f64 {
        self.total_cycles(iterations) as f64 / self.fabric_clock_hz as f64
    }
}

/// Result of one hardware invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HwOutcome {
    /// Iterations executed (the seeded counter value).
    pub iterations: u64,
    /// Fabric cycles consumed.
    pub fabric_cycles: u64,
    /// Final accumulator values (register → value).
    pub accs: BTreeMap<Reg, u32>,
    /// Loads performed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
}

/// Executes a compiled kernel against the data BRAM.
///
/// Functional behaviour uses the kernel's word-level DFG — the source
/// of truth the netlist is synthesized from, and bit-identical to it
/// (pinned per-workload by `word_and_bit_level_executors_agree` below
/// and by the synthesis crate's own equivalence checks). Evaluating
/// words instead of LUT bits keeps warped hot loops within the same
/// order of host cost as the software engines; [`execute_netlist`]
/// remains as the bit-level reference.
///
/// # Errors
///
/// Returns [`MemError`] if a generated address leaves the BRAM — the
/// hardware equivalent of a wild pointer.
pub fn execute(
    kernel: &warp_cdfg::LoopKernel,
    _netlist: &LutNetlist,
    model: &ExecModel,
    env: &KernelEnv,
    dmem: &mut Bram,
) -> Result<HwOutcome, MemError> {
    let mut scratch = ExecScratch::default();
    let mut ptrs: Vec<u32> = kernel.streams.iter().map(|s| env.pointers[&s.base]).collect();
    let mut accs: Vec<u32> =
        kernel.accs.iter().map(|a| env.accs.get(&a.reg).copied().unwrap_or(0)).collect();
    let invs: Vec<u32> =
        kernel.invariants.iter().map(|r| env.invariants.get(r).copied().unwrap_or(0)).collect();

    let flat =
        execute_flat(kernel, model, env.counter, &mut ptrs, &mut accs, &invs, dmem, &mut scratch)?;

    let accs: BTreeMap<Reg, u32> =
        kernel.accs.iter().enumerate().map(|(k, a)| (a.reg, accs[k])).collect();
    Ok(HwOutcome {
        iterations: flat.iterations,
        fabric_cycles: flat.fabric_cycles,
        accs,
        loads: flat.loads,
        stores: flat.stores,
    })
}

/// Reusable per-device evaluation buffers: a [`WclaDevice`] is invoked
/// many times per warp (once per dispatch of the patched loop), and the
/// serving hot path must not allocate per invocation.
///
/// [`WclaDevice`]: crate::WclaDevice
#[derive(Default)]
pub struct ExecScratch {
    vals: Vec<u32>,
    load_vals: Vec<((usize, i32), u32)>,
}

/// [`execute`]'s outcome without the register-keyed map — the flat
/// counters; accumulators are updated in the caller's buffer in place.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlatOutcome {
    /// Iterations executed (the seeded counter value).
    pub iterations: u64,
    /// Fabric cycles consumed.
    pub fabric_cycles: u64,
    /// Loads performed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
}

/// The allocation-free core of [`execute`]: all inputs and outputs are
/// flat, index-aligned buffers (`ptrs` by stream index, `accs` by
/// kernel accumulator index, `invs` by kernel invariant index), updated
/// in place so a device can feed its own registers straight in.
///
/// # Errors
///
/// Returns [`MemError`] if a generated address leaves the BRAM — the
/// hardware equivalent of a wild pointer.
#[allow(clippy::too_many_arguments)]
pub fn execute_flat(
    kernel: &warp_cdfg::LoopKernel,
    model: &ExecModel,
    count: u32,
    ptrs: &mut [u32],
    accs: &mut [u32],
    invs: &[u32],
    dmem: &mut Bram,
    scratch: &mut ExecScratch,
) -> Result<FlatOutcome, MemError> {
    let iterations = u64::from(count);
    let mut loads = 0u64;
    let mut stores = 0u64;
    let ExecScratch { vals, load_vals } = scratch;

    for _ in 0..iterations {
        // DADG load phase: fetch every (stream, offset) word.
        load_vals.clear();
        for (si, s) in kernel.streams.iter().enumerate() {
            let base = ptrs[si];
            for &off in &s.load_offsets {
                let v = dmem.read_word(base.wrapping_add(off as u32))?;
                load_vals.push(((si, off), v));
                loads += 1;
            }
        }

        // Word-level settle: one pass over the DFG in topological
        // order. The operand sets are tiny, so linear scans beat maps.
        kernel.dfg.eval_into(
            vals,
            |stream, offset| {
                load_vals.iter().find(|(k, _)| *k == (stream, offset)).map_or(0, |(_, v)| *v)
            },
            |reg| kernel.invariants.iter().position(|&r| r == reg).map_or(0, |k| invs[k]),
            |reg| kernel.accs.iter().position(|a| a.reg == reg).map_or(0, |k| accs[k]),
        );

        // DADG store phase.
        for s in &kernel.stores {
            let base = ptrs[s.stream];
            dmem.write_word(base.wrapping_add(s.offset as u32), vals[s.value.0 as usize])?;
            stores += 1;
        }

        // Clock the accumulators and advance the streams.
        for (k, a) in kernel.accs.iter().enumerate() {
            accs[k] = vals[a.next.0 as usize];
        }
        for (si, s) in kernel.streams.iter().enumerate() {
            ptrs[si] = ptrs[si].wrapping_add(s.stride as u32);
        }
    }

    Ok(FlatOutcome { iterations, fabric_cycles: model.total_cycles(iterations), loads, stores })
}

/// The bit-level reference executor: identical contract to [`execute`],
/// but functional behaviour comes from evaluating the mapped LUT
/// netlist every iteration. Kept as the cross-check anchoring the
/// word-level fast path to the synthesized hardware.
///
/// # Errors
///
/// Returns [`MemError`] if a generated address leaves the BRAM.
pub fn execute_netlist(
    kernel: &warp_cdfg::LoopKernel,
    netlist: &LutNetlist,
    model: &ExecModel,
    env: &KernelEnv,
    dmem: &mut Bram,
) -> Result<HwOutcome, MemError> {
    let iterations = u64::from(env.counter);
    let mut pointers: BTreeMap<Reg, u32> = env.pointers.clone();
    let invariants = env.invariants.clone();

    // FF state in netlist FF order.
    let mut ff_state: Vec<bool> = netlist
        .ffs()
        .iter()
        .map(|f| env.accs.get(&f.reg).copied().unwrap_or(0) >> f.bit & 1 == 1)
        .collect();

    let mut loads = 0u64;
    let mut stores = 0u64;

    for _ in 0..iterations {
        // DADG load phase: fetch every (stream, offset) word.
        let mut load_vals: BTreeMap<(usize, i32), u32> = BTreeMap::new();
        for (si, s) in kernel.streams.iter().enumerate() {
            let base = pointers[&s.base];
            for &off in &s.load_offsets {
                let v = dmem.read_word(base.wrapping_add(off as u32))?;
                load_vals.insert((si, off), v);
                loads += 1;
            }
        }

        // Fabric settle.
        let eval = netlist.eval(
            |w| match w {
                InputWord::Load { stream, offset } => load_vals[&(stream, offset)],
                InputWord::Invariant(r) => invariants.get(&r).copied().unwrap_or(0),
                InputWord::MacOut(_) => unreachable!("resolved internally"),
            },
            &ff_state,
        );

        // DADG store phase.
        for (out, s) in netlist.outputs().iter().zip(&kernel.stores) {
            let base = pointers[&kernel.streams[s.stream].base];
            dmem.write_word(base.wrapping_add(s.offset as u32), eval.word(&out.bits))?;
            stores += 1;
        }

        // Clock the accumulator flip-flops and advance the streams.
        let next: Vec<bool> = netlist.ffs().iter().map(|f| eval.value(f.d)).collect();
        ff_state = next;
        for s in &kernel.streams {
            let p = pointers.get_mut(&s.base).expect("pointer seeded");
            *p = p.wrapping_add(s.stride as u32);
        }
    }

    // Reassemble accumulator words from FF state.
    let mut accs: BTreeMap<Reg, u32> = BTreeMap::new();
    for (k, f) in netlist.ffs().iter().enumerate() {
        let e = accs.entry(f.reg).or_insert(0);
        *e |= u32::from(ff_state[k]) << f.bit;
    }

    Ok(HwOutcome { iterations, fabric_cycles: model.total_cycles(iterations), accs, loads, stores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_cdfg::decompile_loop;

    /// Hardware execution must equal the kernel interpreter (and hence,
    /// via the decompiler tests, software execution) on real workloads.
    #[test]
    fn hardware_matches_interpreter_on_workloads() {
        for workload in workloads::all() {
            let built = workload.build(MbFeatures::paper_default());
            let kernel =
                decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
            let (circuit, _) = crate::WclaCircuit::build(kernel.clone()).unwrap();

            // Seed memory from the workload's initial data.
            let mut hw_mem = Bram::new(64 * 1024);
            for (addr, words) in &built.data {
                hw_mem.load_words(*addr, words).unwrap();
            }
            let mut ref_mem = hw_mem.clone();

            // Environment: run a modest number of iterations.
            let mut env = KernelEnv { counter: 40, ..KernelEnv::default() };
            for (si, s) in kernel.streams.iter().enumerate() {
                // Separate streams far enough that 40 iterations cannot
                // overlap (the reference interpreter reads a frozen
                // snapshot, the hardware reads live memory).
                let base = 0x1000 + (si as u32) * 0x2000;
                env.pointers.insert(s.base, base);
            }
            for a in &kernel.accs {
                env.accs.insert(a.reg, 0x0BAD_F00D);
            }
            for &r in &kernel.invariants {
                env.invariants.insert(r, 7);
            }

            let hw = execute(&circuit.kernel, &circuit.netlist, &circuit.model, &env, &mut hw_mem)
                .unwrap();
            let mut ref_env = env.clone();
            let ref_mem_ro = ref_mem.clone();
            let mut ref_stores = Vec::new();
            kernel.interpret(
                &mut ref_env,
                |addr| ref_mem_ro.read_word(addr).unwrap(),
                |addr, v| ref_stores.push((addr, v)),
            );
            for (addr, v) in ref_stores {
                ref_mem.write_word(addr, v).unwrap();
            }

            assert_eq!(hw_mem.words(), ref_mem.words(), "{}: memory diverged", workload.name);
            for a in &kernel.accs {
                assert_eq!(hw.accs[&a.reg], ref_env.accs[&a.reg], "{}: acc", workload.name);
            }
            assert_eq!(hw.iterations, 40);
            assert!(hw.fabric_cycles >= 40, "{}: cycles sane", workload.name);
        }
    }

    /// The word-level fast path and the bit-level netlist reference
    /// must agree exactly — outcome, accumulators, memory image, and
    /// stats — for every registry workload. This is the anchor that
    /// lets [`execute`] skip LUT evaluation at runtime.
    #[test]
    fn word_and_bit_level_executors_agree() {
        for workload in workloads::all() {
            let built = workload.build(MbFeatures::paper_default());
            let kernel =
                decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
            let (circuit, _) = crate::WclaCircuit::build(kernel.clone()).unwrap();

            let mut word_mem = Bram::new(64 * 1024);
            for (addr, words) in &built.data {
                word_mem.load_words(*addr, words).unwrap();
            }
            let mut bit_mem = word_mem.clone();

            let mut env = KernelEnv { counter: 37, ..KernelEnv::default() };
            for (si, s) in kernel.streams.iter().enumerate() {
                env.pointers.insert(s.base, 0x1000 + (si as u32) * 0x2000);
            }
            for a in &kernel.accs {
                env.accs.insert(a.reg, 0xDEAD_BEEF);
            }
            for &r in &kernel.invariants {
                env.invariants.insert(r, 13);
            }

            let word =
                execute(&circuit.kernel, &circuit.netlist, &circuit.model, &env, &mut word_mem)
                    .unwrap();
            let bit = execute_netlist(
                &circuit.kernel,
                &circuit.netlist,
                &circuit.model,
                &env,
                &mut bit_mem,
            )
            .unwrap();

            assert_eq!(word, bit, "{}: outcome diverged", workload.name);
            assert_eq!(word_mem.words(), bit_mem.words(), "{}: memory diverged", workload.name);
        }
    }

    #[test]
    fn cycle_model_orders_kernels_sensibly() {
        let get_model = |name: &str| {
            let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
            let kernel =
                decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
            let (circuit, _) = crate::WclaCircuit::build(kernel).unwrap();
            circuit.model
        };
        let brev = get_model("brev");
        let idct = get_model("idct");
        // brev is wires; idct has 16 memory ops and 14 MACs.
        assert!(brev.cycles_per_iteration < idct.cycles_per_iteration);
        assert!(idct.mac_cycles >= 28);
        assert_eq!(brev.mem_ops, 2);
    }
}
