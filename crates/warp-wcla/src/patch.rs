//! Binary patching: making the running program invoke the hardware.
//!
//! The last step of warp processing: the DPM "updates the executing
//! application's binary code to utilize the hardware within the
//! configurable logic fabric". The kernel loop's first word is replaced
//! by a jump to an invocation stub placed in free instruction memory
//! (a trampoline, since the stub can be longer than a small loop body).
//! The stub marshals the loop's live-in registers into the WCLA's
//! memory-mapped registers, starts the hardware, blocks on the status
//! read, moves accumulator results back into the architectural
//! registers the following code expects, and jumps to the loop exit.

use std::error::Error;
use std::fmt;

use mb_isa::{encode, Insn, Reg};
use mb_sim::Bram;
use warp_cdfg::LoopKernel;

use crate::device::{regs, WCLA_BASE};

/// Guard gap, in instruction words, between the end of the program
/// image and the invocation stub.
///
/// The stub lives in free instruction memory just past the program. It
/// is not placed flush against the image: the gap keeps the stub clear
/// of the image's last words even if the program length is later
/// rounded up (e.g. by alignment padding during load), and makes the
/// stub easy to spot in instruction-memory dumps. Every layer that
/// needs "where does the stub go?" — the warp orchestration in
/// `warp-core`, examples, and the cross-crate invariants tests — must
/// compute it with [`stub_base_for`] so the answer is the same
/// everywhere.
pub const STUB_GAP_WORDS: u32 = 8;

/// The address the warp flow places the invocation stub at, for a
/// program image ending at `program_end` (as reported by
/// `mb_isa::Program::end`): the image end plus [`STUB_GAP_WORDS`] words.
#[must_use]
pub fn stub_base_for(program_end: u32) -> u32 {
    program_end + 4 * STUB_GAP_WORDS
}

/// Why a kernel could not be patched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatchError {
    /// The kernel body clobbers no register the stub could use as
    /// scratch.
    NoScratchRegister,
    /// The kernel uses more streams/accumulators/invariants than the
    /// WCLA register window exposes.
    TooManyLiveIns,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NoScratchRegister => f.write_str("no scratch register for the stub"),
            PatchError::TooManyLiveIns => f.write_str("too many live-ins for the WCLA window"),
        }
    }
}

impl Error for PatchError {}

/// A prepared binary patch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatchPlan {
    /// Address the stub is placed at.
    pub stub_base: u32,
    /// Encoded stub words.
    pub stub: Vec<u32>,
    /// Address of the kernel head (word replaced by a jump).
    pub head: u32,
    /// The replacement word at the head (a `bri` to the stub).
    pub head_word: u32,
    /// Original word at the head (for un-patching).
    pub original_head_word: u32,
}

impl PatchPlan {
    /// Builds the invocation stub for a kernel.
    ///
    /// `stub_base` is free instruction memory (typically just past the
    /// program image); `after` is the first instruction following the
    /// loop.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError`] if the kernel offers no scratch register
    /// or exceeds the WCLA register window.
    pub fn new(
        kernel: &LoopKernel,
        program_word_at_head: u32,
        stub_base: u32,
        after: u32,
    ) -> Result<Self, PatchError> {
        let scratch = *kernel.dead_temps.first().ok_or(PatchError::NoScratchRegister)?;
        if kernel.streams.len() > 3 || kernel.accs.len() > 4 || kernel.invariants.len() > 4 {
            return Err(PatchError::TooManyLiveIns);
        }

        let mut insns: Vec<Insn> = Vec::new();
        // scratch = WCLA base (32-bit constant: imm + addik).
        insns.push(Insn::Imm { imm: (WCLA_BASE >> 16) as i16 });
        insns.push(Insn::addik(scratch, Reg::R0, WCLA_BASE as i16));
        // Marshal live-ins.
        insns.push(Insn::swi(kernel.counter, scratch, regs::COUNT as i16));
        for (i, s) in kernel.streams.iter().enumerate() {
            insns.push(Insn::swi(s.base, scratch, (regs::BASE0 + 4 * i as u32) as i16));
        }
        for (k, a) in kernel.accs.iter().enumerate() {
            insns.push(Insn::swi(a.reg, scratch, (regs::ACC0 + 4 * k as u32) as i16));
        }
        for (k, &r) in kernel.invariants.iter().enumerate() {
            insns.push(Insn::swi(r, scratch, (regs::INV0 + 4 * k as u32) as i16));
        }
        // Start, then block until done (the counter register is dead once
        // marshalled — it doubles as the status destination).
        insns.push(Insn::swi(Reg::R0, scratch, regs::CTRL as i16));
        insns.push(Insn::lwi(kernel.counter, scratch, regs::STATUS as i16));
        // Accumulator live-outs back into architectural registers.
        for (k, a) in kernel.accs.iter().enumerate() {
            insns.push(Insn::lwi(a.reg, scratch, (regs::ACC0 + 4 * k as u32) as i16));
        }
        // Jump to the loop exit.
        let jump_pc = stub_base + 4 * insns.len() as u32;
        let offset = after.wrapping_sub(jump_pc) as i32;
        insns.push(Insn::Bri {
            rd: Reg::R0,
            imm: offset as i16,
            link: false,
            absolute: false,
            delay: false,
        });

        let head_jump = stub_base.wrapping_sub(kernel.head) as i32;
        let head_insn = Insn::Bri {
            rd: Reg::R0,
            imm: head_jump as i16,
            link: false,
            absolute: false,
            delay: false,
        };

        Ok(PatchPlan {
            stub_base,
            stub: insns.iter().map(encode).collect(),
            head: kernel.head,
            head_word: encode(&head_insn),
            original_head_word: program_word_at_head,
        })
    }

    /// Stub length in instruction words.
    #[must_use]
    pub fn stub_words(&self) -> usize {
        self.stub.len()
    }
}

/// Applies a patch to instruction memory.
///
/// # Errors
///
/// Returns a [`mb_sim::MemError`] if the stub does not fit.
pub fn apply_patch(imem: &mut Bram, plan: &PatchPlan) -> Result<(), mb_sim::MemError> {
    imem.load_words(plan.stub_base, &plan.stub)?;
    imem.write_word(plan.head, plan.head_word)?;
    Ok(())
}

/// Reverts a patch (restores the original loop head; the stub area is
/// simply abandoned).
///
/// # Errors
///
/// Returns a [`mb_sim::MemError`] on out-of-range addresses.
pub fn revert_patch(imem: &mut Bram, plan: &PatchPlan) -> Result<(), mb_sim::MemError> {
    imem.write_word(plan.head, plan.original_head_word)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_cdfg::decompile_loop;

    #[test]
    fn stub_shape_for_every_workload() {
        for workload in workloads::all() {
            let built = workload.build(MbFeatures::paper_default());
            let kernel =
                decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
            let head_word = built.program.word_at(built.kernel.head).unwrap();
            let stub_base = stub_base_for(built.program.end());
            let plan = PatchPlan::new(&kernel, head_word, stub_base, built.kernel.after())
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name));

            // Expected: 2 (base) + 1 (count) + streams + accs + invs + 1
            // (start) + 1 (status) + accs (readback) + 1 (jump).
            let expected =
                2 + 1 + kernel.streams.len() + 2 * kernel.accs.len() + kernel.invariants.len() + 3;
            assert_eq!(plan.stub_words(), expected, "{}", workload.name);

            // The head replacement must decode to a forward branch to
            // the stub.
            match mb_isa::decode(plan.head_word).unwrap() {
                Insn::Bri { imm, .. } => {
                    assert_eq!(plan.head.wrapping_add(imm as i32 as u32), stub_base);
                }
                other => panic!("head patch must be bri, got {other}"),
            }
        }
    }

    #[test]
    fn apply_and_revert_round_trip() {
        let built = workloads::by_name("bitmnp").unwrap().build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let head_word = built.program.word_at(built.kernel.head).unwrap();
        let plan = PatchPlan::new(
            &kernel,
            head_word,
            stub_base_for(built.program.end()),
            built.kernel.after(),
        )
        .unwrap();

        let mut imem = Bram::new(64 * 1024);
        imem.load_words(built.program.base, &built.program.words).unwrap();
        let before = imem.clone();
        apply_patch(&mut imem, &plan).unwrap();
        assert_ne!(imem.read_word(plan.head).unwrap(), before.read_word(plan.head).unwrap());
        revert_patch(&mut imem, &plan).unwrap();
        assert_eq!(imem.read_word(plan.head).unwrap(), before.read_word(plan.head).unwrap());
    }
}
