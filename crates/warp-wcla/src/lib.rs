//! The warp configurable logic architecture (WCLA).
//!
//! Paper Figure 3: the WCLA consists of a data address generator (DADG)
//! with loop control hardware (LCH), three input/output registers
//! (Reg0–Reg2), a 32-bit multiplier-accumulator (MAC), and the
//! configurable logic fabric. It handles all memory accesses through the
//! dual-ported data BRAM and controls the execution of the partitioned
//! loop; the MicroBlaze communicates with it over the on-chip peripheral
//! bus.
//!
//! This crate provides:
//!
//! * [`WclaCircuit`] — a kernel compiled end-to-end (decompiled loop +
//!   mapped netlist + placed/routed fabric configuration + cycle model);
//! * [`executor`] — the cycle-level hardware executor: per iteration the
//!   DADG performs each load/store in one fabric cycle, the routed logic
//!   settles over however many fabric cycles its critical path needs,
//!   and MAC operations serialize on the single hard multiplier;
//! * [`device`] — the OPB peripheral ([`WclaDevice`]): memory-mapped
//!   registers the patched binary writes to seed the counter, stream
//!   bases, accumulators, and invariants, plus a blocking status read
//!   that stalls the MicroBlaze (idle) while hardware executes;
//! * [`patch`] — binary patching: generates the invocation stub and
//!   rewrites the running program so the kernel loop invokes the
//!   hardware — the "updates the executing application's binary code"
//!   step of warp processing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod executor;
pub mod patch;

use warp_cdfg::LoopKernel;
use warp_fabric::{CompiledCircuit, FabricCaches, FabricConfig, FabricWork};
use warp_synth::map::{MapCache, MapWork};
use warp_synth::{LutNetlist, SynthReport};

pub use device::{WclaDevice, WclaStats, WCLA_BASE, WCLA_WINDOW};
pub use executor::{ExecModel, HwOutcome};
pub use patch::{apply_patch, stub_base_for, PatchPlan, STUB_GAP_WORDS};

/// Memoization caches spanning the whole CAD back end: technology
/// mapping cones, placements, and first-pass net routes.
///
/// Compiling with caches never changes any artifact — a from-scratch
/// compile is exactly an incremental compile with empty caches — it
/// only changes the work a [`CadWork`] reports, and hence the modeled
/// CAD time charged to the online timeline.
#[derive(Debug, Default)]
pub struct CadCaches {
    /// Mapped LUT-cone cache (sub-kernel fingerprints).
    pub map: MapCache,
    /// Placement and routing caches.
    pub fabric: FabricCaches,
}

impl CadCaches {
    /// Creates empty caches.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Work the CAD back end actually performed for one compile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CadWork {
    /// Technology-mapping work (cones mapped vs. replayed).
    pub map: MapWork,
    /// Place & route work (attempts, fresh wires, restored nets).
    pub fabric: FabricWork,
}

/// Fabric clock ceiling: "the remaining FPGA circuits can operate at up
/// to 250 MHz" (paper Section 4).
pub const FABRIC_CLOCK_HZ: u64 = 250_000_000;

/// MAC latency in fabric cycles (hard 32-bit multiplier).
pub const MAC_LATENCY: u64 = 2;

/// A kernel fully compiled for the WCLA.
#[derive(Clone, Debug)]
pub struct WclaCircuit {
    /// The decompiled kernel (streams, stores, accumulators).
    pub kernel: LoopKernel,
    /// The mapped LUT netlist (used for fast functional iteration).
    pub netlist: LutNetlist,
    /// The placed/routed/configured fabric circuit.
    pub compiled: CompiledCircuit,
    /// The derived cycle model.
    pub model: ExecModel,
}

impl WclaCircuit {
    /// Compiles a decompiled kernel onto the WCLA: synthesis → mapping →
    /// place & route → bitstream → cycle model.
    ///
    /// # Errors
    ///
    /// Propagates fabric capacity/routability errors.
    pub fn build(kernel: LoopKernel) -> Result<(Self, SynthReport), warp_fabric::CompileError> {
        Self::build_cached(kernel, None).map(|(circuit, report, _)| (circuit, report))
    }

    /// [`WclaCircuit::build`] with memoization: reuses mapped cones,
    /// placements, and net routes from `caches`, reporting the work
    /// actually performed. The circuit is bit-identical with or without
    /// caches.
    ///
    /// # Errors
    ///
    /// Propagates fabric capacity/routability errors.
    pub fn build_cached(
        kernel: LoopKernel,
        caches: Option<&CadCaches>,
    ) -> Result<(Self, SynthReport, CadWork), warp_fabric::CompileError> {
        let report = warp_synth::synthesize(&kernel);
        let (netlist, map_work) =
            warp_synth::map::map_netlist_cached(&report.netlist, caches.map(|c| &c.map));
        let base = FabricConfig::sized_for(netlist.lut_count(), netlist.ffs().len());
        let (compiled, fabric_work) =
            warp_fabric::compile_cached(&netlist, &base, caches.map(|c| &c.fabric))?;
        let model = ExecModel::derive(&kernel, &netlist, &compiled);
        let work = CadWork { map: map_work, fabric: fabric_work };
        Ok((WclaCircuit { kernel, netlist, compiled, model }, report, work))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_cdfg::decompile_loop;

    #[test]
    fn every_workload_kernel_builds_a_circuit() {
        for workload in workloads::all() {
            let built = workload.build(MbFeatures::paper_default());
            let kernel =
                decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
            let (circuit, report) = WclaCircuit::build(kernel).unwrap();
            assert!(circuit.model.cycles_per_iteration >= 1);
            assert!(circuit.model.fabric_clock_hz <= FABRIC_CLOCK_HZ);
            assert!(
                report.stats.gates >= circuit.netlist.lut_count() as u64 / 4,
                "{}: gate/LUT ratio sanity",
                workload.name
            );
        }
    }
}
