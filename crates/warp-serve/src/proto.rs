//! The length-prefixed binary wire protocol.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by the payload; the payload's first byte is the opcode.
//! All integers are little-endian; strings are a `u32` length plus
//! UTF-8 bytes; optional values are a one-byte presence flag. The
//! format is hand-rolled (the workspace is offline — no serde) and
//! versioned by [`PROTO_VERSION`], which the `Create` opcode carries so
//! a server can reject a stale client with a readable error instead of
//! a decode failure.
//!
//! The interesting payload is [`Response::Report`]: the *complete*
//! [`OnlineReport`] — every warp event with its DPM breakdown, circuit
//! model, and hardware activity, plus the profiler counters — crosses
//! the wire losslessly. The round-trip test in `tests/wire.rs` decodes
//! a served report and asserts it equal to a standalone
//! [`Orchestrator`](warp_online::Orchestrator) run of the same
//! workload: determinism holds end-to-end *through the socket*, not
//! just in process.

use warp_core::dpm::DpmReport;
use warp_online::{OnlineReport, WarpEvent};
use warp_profiler::ProfilerStats;
use warp_wcla::{ExecModel, WclaStats};

use crate::error::ServeError;
use crate::server::{FleetStats, SessionSnapshot};

/// Wire protocol version carried in `Create` requests.
pub const PROTO_VERSION: u32 = 1;

/// Client-to-server commands.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Instantiate a session from the seeded workload registry.
    Create {
        /// Registry workload name (e.g. `"brev"`).
        workload: String,
        /// Input-data seed ([`workloads::Workload::build_seeded`]).
        seed: u64,
        /// Warp-event cap: `0` uses the plain threshold policy,
        /// otherwise a top-k policy with this k.
        k: u32,
        /// Minimum profiler heat before a region is warped.
        min_count: u64,
        /// Scheduler slice length in simulated cycles (`0` = default).
        slice_cycles: u64,
        /// End-to-end executions folded into one timeline (`0` = 1).
        repeats: u32,
        /// Whether to attach the server's shared circuit cache.
        share_cache: bool,
    },
    /// Grant unbounded slices: serve to completion.
    Run(u64),
    /// Grant exactly this many scheduler slices.
    Step {
        /// Session id.
        id: u64,
        /// Slices to grant.
        slices: u64,
    },
    /// Hot-patch instruction memory.
    Patch {
        /// Session id.
        id: u64,
        /// Word-aligned target address.
        addr: u32,
        /// Instruction words to write.
        words: Vec<u32>,
    },
    /// Read the session's progress snapshot.
    Query(u64),
    /// Block until completion and take the full report.
    Report(u64),
    /// Read fleet-wide counters.
    Fleet,
    /// Discard a session.
    Remove(u64),
}

/// Server-to-client replies.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Session created.
    Created(u64),
    /// Command applied.
    Ok,
    /// Progress snapshot.
    Status(SessionSnapshot),
    /// The completed session's full report.
    Report(OnlineReport),
    /// Fleet-wide counters.
    Fleet(FleetStats),
    /// Command failed.
    Error(String),
}

mod op {
    pub const CREATE: u8 = 0x01;
    pub const RUN: u8 = 0x02;
    pub const STEP: u8 = 0x03;
    pub const PATCH: u8 = 0x04;
    pub const QUERY: u8 = 0x05;
    pub const REPORT: u8 = 0x06;
    pub const FLEET: u8 = 0x07;
    pub const REMOVE: u8 = 0x08;

    pub const R_CREATED: u8 = 0x81;
    pub const R_OK: u8 = 0x82;
    pub const R_STATUS: u8 = 0x83;
    pub const R_REPORT: u8 = 0x84;
    pub const R_FLEET: u8 = 0x85;
    pub const R_ERROR: u8 = 0xFF;
}

// ---- primitive writers/readers ---------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string fits a frame"));
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServeError::Protocol("truncated frame".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> Result<bool, ServeError> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.bytes(len)?.to_vec())
            .map_err(|_| ServeError::Protocol("invalid utf-8 string".into()))
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---- report codec -----------------------------------------------------

fn put_dpm(buf: &mut Vec<u8>, d: &DpmReport) {
    for v in [
        d.decompile_cycles,
        d.synth_cycles,
        d.map_cycles,
        d.place_cycles,
        d.route_cycles,
        d.bitstream_cycles,
        d.peak_memory_bytes,
    ] {
        put_u64(buf, v);
    }
}

fn get_dpm(r: &mut Reader<'_>) -> Result<DpmReport, ServeError> {
    Ok(DpmReport {
        decompile_cycles: r.u64()?,
        synth_cycles: r.u64()?,
        map_cycles: r.u64()?,
        place_cycles: r.u64()?,
        route_cycles: r.u64()?,
        bitstream_cycles: r.u64()?,
        peak_memory_bytes: r.u64()?,
    })
}

fn put_model(buf: &mut Vec<u8>, m: &ExecModel) {
    for v in [
        m.fabric_clock_hz,
        m.mem_ops,
        m.compute_cycles,
        m.mac_cycles,
        m.startup_cycles,
        m.cycles_per_iteration,
    ] {
        put_u64(buf, v);
    }
}

fn get_model(r: &mut Reader<'_>) -> Result<ExecModel, ServeError> {
    Ok(ExecModel {
        fabric_clock_hz: r.u64()?,
        mem_ops: r.u64()?,
        compute_cycles: r.u64()?,
        mac_cycles: r.u64()?,
        startup_cycles: r.u64()?,
        cycles_per_iteration: r.u64()?,
    })
}

fn put_hw(buf: &mut Vec<u8>, h: &WclaStats) {
    for v in [h.invocations, h.iterations, h.fabric_cycles, h.mb_stall_cycles, h.loads, h.stores] {
        put_u64(buf, v);
    }
}

fn get_hw(r: &mut Reader<'_>) -> Result<WclaStats, ServeError> {
    Ok(WclaStats {
        invocations: r.u64()?,
        iterations: r.u64()?,
        fabric_cycles: r.u64()?,
        mb_stall_cycles: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
    })
}

fn put_event(buf: &mut Vec<u8>, e: &WarpEvent) {
    put_u32(buf, e.head);
    put_u32(buf, e.tail);
    put_u64(buf, e.count_at_detection);
    put_u64(buf, e.fingerprint);
    put_u64(buf, e.detected_cycle);
    put_u64(buf, e.cad_cycles);
    put_u64(buf, e.patched_cycle);
    put_u64(buf, e.patched_insns);
    put_bool(buf, e.cache_hit);
    put_u64(buf, e.reused_clusters);
    put_u64(buf, e.total_clusters);
    put_u64(buf, e.rerouted_nets as u64);
    put_u64(buf, e.total_nets as u64);
    put_u64(buf, e.cad_overlap_cycles);
    match e.evicted {
        None => put_bool(buf, false),
        Some((h, t)) => {
            put_bool(buf, true);
            put_u32(buf, h);
            put_u32(buf, t);
        }
    }
    put_dpm(buf, &e.dpm);
    put_model(buf, &e.model);
    put_hw(buf, &e.hw);
}

fn get_event(r: &mut Reader<'_>) -> Result<WarpEvent, ServeError> {
    let usize_of =
        |v: u64| usize::try_from(v).map_err(|_| ServeError::Protocol("count exceeds usize".into()));
    Ok(WarpEvent {
        head: r.u32()?,
        tail: r.u32()?,
        count_at_detection: r.u64()?,
        fingerprint: r.u64()?,
        detected_cycle: r.u64()?,
        cad_cycles: r.u64()?,
        patched_cycle: r.u64()?,
        patched_insns: r.u64()?,
        cache_hit: r.bool()?,
        reused_clusters: r.u64()?,
        total_clusters: r.u64()?,
        rerouted_nets: usize_of(r.u64()?)?,
        total_nets: usize_of(r.u64()?)?,
        cad_overlap_cycles: r.u64()?,
        evicted: if r.bool()? { Some((r.u32()?, r.u32()?)) } else { None },
        dpm: get_dpm(r)?,
        model: get_model(r)?,
        hw: get_hw(r)?,
    })
}

fn put_profiler(buf: &mut Vec<u8>, p: &ProfilerStats) {
    for v in [p.events, p.hits, p.evictions, p.agings, p.decays, p.decay_evictions, p.instructions]
    {
        put_u64(buf, v);
    }
}

fn get_profiler(r: &mut Reader<'_>) -> Result<ProfilerStats, ServeError> {
    Ok(ProfilerStats {
        events: r.u64()?,
        hits: r.u64()?,
        evictions: r.u64()?,
        agings: r.u64()?,
        decays: r.u64()?,
        decay_evictions: r.u64()?,
        instructions: r.u64()?,
    })
}

fn put_report(buf: &mut Vec<u8>, rep: &OnlineReport) {
    put_str(buf, &rep.name);
    put_u32(buf, rep.repeats);
    put_u64(buf, rep.slices);
    put_u64(buf, rep.cycles);
    put_u64(buf, rep.instructions);
    put_u32(buf, rep.exit_code);
    put_u32(buf, u32::try_from(rep.events.len()).expect("event count fits u32"));
    for e in &rep.events {
        put_event(buf, e);
    }
    put_profiler(buf, &rep.profiler);
}

fn get_report(r: &mut Reader<'_>) -> Result<OnlineReport, ServeError> {
    let name = r.str()?;
    let repeats = r.u32()?;
    let slices = r.u64()?;
    let cycles = r.u64()?;
    let instructions = r.u64()?;
    let exit_code = r.u32()?;
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    let profiler = get_profiler(r)?;
    Ok(OnlineReport { name, repeats, slices, cycles, instructions, exit_code, events, profiler })
}

// ---- message codec ----------------------------------------------------

impl Request {
    /// Encodes the request as one frame payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Create {
                workload,
                seed,
                k,
                min_count,
                slice_cycles,
                repeats,
                share_cache,
            } => {
                put_u8(&mut buf, op::CREATE);
                put_u32(&mut buf, PROTO_VERSION);
                put_str(&mut buf, workload);
                put_u64(&mut buf, *seed);
                put_u32(&mut buf, *k);
                put_u64(&mut buf, *min_count);
                put_u64(&mut buf, *slice_cycles);
                put_u32(&mut buf, *repeats);
                put_bool(&mut buf, *share_cache);
            }
            Request::Run(id) => {
                put_u8(&mut buf, op::RUN);
                put_u64(&mut buf, *id);
            }
            Request::Step { id, slices } => {
                put_u8(&mut buf, op::STEP);
                put_u64(&mut buf, *id);
                put_u64(&mut buf, *slices);
            }
            Request::Patch { id, addr, words } => {
                put_u8(&mut buf, op::PATCH);
                put_u64(&mut buf, *id);
                put_u32(&mut buf, *addr);
                put_u32(&mut buf, u32::try_from(words.len()).expect("patch fits a frame"));
                for w in words {
                    put_u32(&mut buf, *w);
                }
            }
            Request::Query(id) => {
                put_u8(&mut buf, op::QUERY);
                put_u64(&mut buf, *id);
            }
            Request::Report(id) => {
                put_u8(&mut buf, op::REPORT);
                put_u64(&mut buf, *id);
            }
            Request::Fleet => put_u8(&mut buf, op::FLEET),
            Request::Remove(id) => {
                put_u8(&mut buf, op::REMOVE);
                put_u64(&mut buf, *id);
            }
        }
        buf
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a truncated frame, unknown opcode,
    /// version mismatch, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            op::CREATE => {
                let version = r.u32()?;
                if version != PROTO_VERSION {
                    return Err(ServeError::Protocol(format!(
                        "protocol version {version} (server speaks {PROTO_VERSION})"
                    )));
                }
                Request::Create {
                    workload: r.str()?,
                    seed: r.u64()?,
                    k: r.u32()?,
                    min_count: r.u64()?,
                    slice_cycles: r.u64()?,
                    repeats: r.u32()?,
                    share_cache: r.bool()?,
                }
            }
            op::RUN => Request::Run(r.u64()?),
            op::STEP => Request::Step { id: r.u64()?, slices: r.u64()? },
            op::PATCH => {
                let id = r.u64()?;
                let addr = r.u32()?;
                let n = r.u32()? as usize;
                let mut words = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    words.push(r.u32()?);
                }
                Request::Patch { id, addr, words }
            }
            op::QUERY => Request::Query(r.u64()?),
            op::REPORT => Request::Report(r.u64()?),
            op::FLEET => Request::Fleet,
            op::REMOVE => Request::Remove(r.u64()?),
            other => {
                return Err(ServeError::Protocol(format!("unknown request opcode {other:#04x}")))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Created(id) => {
                put_u8(&mut buf, op::R_CREATED);
                put_u64(&mut buf, *id);
            }
            Response::Ok => put_u8(&mut buf, op::R_OK),
            Response::Status(s) => {
                put_u8(&mut buf, op::R_STATUS);
                put_u64(&mut buf, s.cycles);
                put_u64(&mut buf, s.instructions);
                put_u64(&mut buf, s.slices);
                put_u64(&mut buf, s.warps as u64);
                match s.time_to_first_warp {
                    None => put_bool(&mut buf, false),
                    Some(t) => {
                        put_bool(&mut buf, true);
                        put_u64(&mut buf, t);
                    }
                }
                put_bool(&mut buf, s.done);
            }
            Response::Report(rep) => {
                put_u8(&mut buf, op::R_REPORT);
                put_report(&mut buf, rep);
            }
            Response::Fleet(f) => {
                put_u8(&mut buf, op::R_FLEET);
                for v in [
                    f.created,
                    f.finished,
                    f.failed,
                    f.quanta,
                    f.cycles,
                    f.instructions,
                    f.warps,
                    f.ttfw_sum,
                    f.ttfw_sessions,
                ] {
                    put_u64(&mut buf, v);
                }
            }
            Response::Error(msg) => {
                put_u8(&mut buf, op::R_ERROR);
                put_str(&mut buf, msg);
            }
        }
        buf
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a truncated frame, unknown opcode,
    /// or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            op::R_CREATED => Response::Created(r.u64()?),
            op::R_OK => Response::Ok,
            op::R_STATUS => Response::Status(SessionSnapshot {
                cycles: r.u64()?,
                instructions: r.u64()?,
                slices: r.u64()?,
                warps: usize::try_from(r.u64()?)
                    .map_err(|_| ServeError::Protocol("warp count exceeds usize".into()))?,
                time_to_first_warp: if r.bool()? { Some(r.u64()?) } else { None },
                done: r.bool()?,
            }),
            op::R_REPORT => Response::Report(get_report(&mut r)?),
            op::R_FLEET => Response::Fleet(FleetStats {
                created: r.u64()?,
                finished: r.u64()?,
                failed: r.u64()?,
                quanta: r.u64()?,
                cycles: r.u64()?,
                instructions: r.u64()?,
                warps: r.u64()?,
                ttfw_sum: r.u64()?,
                ttfw_sessions: r.u64()?,
            }),
            op::R_ERROR => Response::Error(r.str()?),
            other => {
                return Err(ServeError::Protocol(format!("unknown response opcode {other:#04x}")))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Writes one frame (length prefix + payload) to a byte sink.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload from a byte source. Returns `None` on a
/// clean EOF at a frame boundary (client hung up).
///
/// # Errors
///
/// Propagates I/O errors; a frame longer than [`MAX_FRAME`] is a
/// protocol violation reported as `InvalidData`.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Upper bound on one frame's payload: large enough for a report with
/// thousands of warp events, small enough that a corrupt length prefix
/// cannot make the server allocate gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(&decoded, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Create {
            workload: "brev".into(),
            seed: 42,
            k: 1,
            min_count: 256,
            slice_cycles: 0,
            repeats: 2,
            share_cache: true,
        });
        round_trip_request(&Request::Run(7));
        round_trip_request(&Request::Step { id: 7, slices: 1000 });
        round_trip_request(&Request::Patch { id: 7, addr: 0x44, words: vec![1, 2, 3] });
        round_trip_request(&Request::Query(7));
        round_trip_request(&Request::Report(7));
        round_trip_request(&Request::Fleet);
        round_trip_request(&Request::Remove(7));
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Created(9),
            Response::Ok,
            Response::Status(SessionSnapshot {
                cycles: 1,
                instructions: 2,
                slices: 3,
                warps: 4,
                time_to_first_warp: Some(5),
                done: false,
            }),
            Response::Fleet(FleetStats { created: 11, finished: 7, ..FleetStats::default() }),
            Response::Error("boom".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn report_round_trips_bit_identically() {
        let report = OnlineReport {
            name: "phased".into(),
            repeats: 2,
            slices: 100,
            cycles: 2_000_000,
            instructions: 800_000,
            exit_code: 0,
            events: vec![WarpEvent {
                head: 0x120,
                tail: 0x164,
                count_at_detection: 4096,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                detected_cycle: 40_000,
                cad_cycles: 120_000,
                patched_cycle: 180_000,
                patched_insns: 70_000,
                cache_hit: true,
                reused_clusters: 30,
                total_clusters: 30,
                rerouted_nets: 0,
                total_nets: 44,
                cad_overlap_cycles: 140_000,
                evicted: Some((0x80, 0xC4)),
                dpm: DpmReport {
                    decompile_cycles: 1,
                    synth_cycles: 2,
                    map_cycles: 3,
                    place_cycles: 4,
                    route_cycles: 5,
                    bitstream_cycles: 6,
                    peak_memory_bytes: 7,
                },
                model: ExecModel {
                    fabric_clock_hz: 42_000_000,
                    mem_ops: 2,
                    compute_cycles: 3,
                    mac_cycles: 0,
                    startup_cycles: 2,
                    cycles_per_iteration: 5,
                },
                hw: WclaStats {
                    invocations: 1,
                    iterations: 9000,
                    fabric_cycles: 45_000,
                    mb_stall_cycles: 90_000,
                    loads: 9000,
                    stores: 9000,
                },
            }],
            profiler: ProfilerStats {
                events: 10,
                hits: 9,
                evictions: 1,
                agings: 0,
                decays: 4,
                decay_evictions: 2,
                instructions: 800_000,
            },
        };
        let decoded = match Response::decode(&Response::Report(report.clone()).encode()).unwrap() {
            Response::Report(r) => r,
            other => panic!("wrong variant: {other:?}"),
        };
        assert_eq!(decoded, report);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x55]).is_err(), "unknown opcode");
        // Truncated Run.
        assert!(Request::decode(&[op::RUN, 1, 2]).is_err());
        // Trailing garbage.
        let mut buf = Request::Run(1).encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        // Version mismatch.
        let mut create = Request::Create {
            workload: "brev".into(),
            seed: 0,
            k: 0,
            min_count: 1,
            slice_cycles: 0,
            repeats: 1,
            share_cache: false,
        }
        .encode();
        create[1] = 0xEE;
        assert!(matches!(Request::decode(&create), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &Request::Fleet.encode()).unwrap();
        write_frame(&mut stream, &Request::Run(3).encode()).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(
            Request::decode(&read_frame(&mut cursor).unwrap().unwrap()).unwrap(),
            Request::Fleet
        );
        assert_eq!(
            Request::decode(&read_frame(&mut cursor).unwrap().unwrap()).unwrap(),
            Request::Run(3)
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }
}
