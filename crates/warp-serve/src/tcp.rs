//! TCP front-end: one [`WireServer`] accepts connections, each served
//! by a thread speaking the framed protocol of [`crate::proto`] against
//! the shared in-process [`Server`].
//!
//! The wire layer owns the pieces the protocol's `Create` needs that
//! the core scheduler deliberately does not know about: the seeded
//! workload registry (names → [`workloads::Workload::build_seeded`]),
//! the server-wide shared [`CircuitCache`] that `share_cache: true`
//! sessions attach, and the single [`CadService`] pool every session's
//! background compiles run on. Sharing the CAD pool is free — results
//! are consumed only at modeled-time boundaries, so pool contention
//! trades wall-clock, never timeline. Sharing the circuit cache is the
//! cross-tenant optimization: tenants running the same kernel (same
//! program image, different seeded data) hit each other's compiled
//! circuits and pay only reconfiguration cycles.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use mb_isa::MbFeatures;
use warp_core::{CadService, CircuitCache};
use warp_online::{OnlineConfig, OnlineSession, ThresholdPolicy, TopKPolicy};

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::server::{ServeConfig, Server};
use crate::ServeError;

/// A TCP-fronted warp-simulation server.
pub struct WireServer {
    core: Arc<Server>,
    cache: Arc<CircuitCache>,
    cad: Arc<CadService>,
    listener: TcpListener,
}

impl WireServer {
    /// Binds a listener and starts the scheduler's worker pool.
    /// `cache` is the server-wide shared circuit cache (pass a
    /// [`CircuitCache::bounded`] one to cap resident compiled kernels).
    ///
    /// # Errors
    ///
    /// Propagates the socket bind failure.
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        cache: Arc<CircuitCache>,
    ) -> std::io::Result<Self> {
        Ok(WireServer {
            core: Arc::new(Server::start(config)),
            cache,
            cad: Arc::new(CadService::from_env()),
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared in-process scheduler, for mixing wire and in-process
    /// clients against one fleet.
    #[must_use]
    pub fn core(&self) -> &Arc<Server> {
        &self.core
    }

    /// Runs the accept loop forever on a background thread, one
    /// handler thread per connection.
    #[must_use]
    pub fn spawn(self) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("warp-serve-accept".into())
            .spawn(move || {
                let WireServer { core, cache, cad, listener } = self;
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let core = Arc::clone(&core);
                    let cache = Arc::clone(&cache);
                    let cad = Arc::clone(&cad);
                    let _ = std::thread::Builder::new().name("warp-serve-conn".into()).spawn(
                        move || {
                            let _ = serve_connection(&core, &cache, &cad, stream);
                        },
                    );
                }
            })
            .expect("spawn warp-serve accept thread")
    }

    /// Handles one request against this server's fleet — the same
    /// dispatch the connection threads run, callable in-process.
    #[must_use]
    pub fn handle(&self, req: Request) -> Response {
        dispatch(&self.core, &self.cache, &self.cad, req)
    }
}

fn serve_connection(
    core: &Server,
    cache: &Arc<CircuitCache>,
    cad: &Arc<CadService>,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(req) => dispatch(core, cache, cad, req),
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

/// Builds a session from a `Create` request against the seeded
/// workload registry.
#[allow(clippy::too_many_arguments)] // mirrors the wire Create frame
fn create_session(
    cache: &Arc<CircuitCache>,
    cad: &Arc<CadService>,
    workload: &str,
    seed: u64,
    k: u32,
    min_count: u64,
    slice_cycles: u64,
    repeats: u32,
    share_cache: bool,
) -> Result<OnlineSession, ServeError> {
    let spec = workloads::by_name(workload)
        .ok_or_else(|| ServeError::Protocol(format!("unknown workload {workload:?}")))?;
    let built = Arc::new(spec.build_seeded(MbFeatures::paper_default(), seed));
    let mut config = OnlineConfig::default();
    if slice_cycles > 0 {
        config.slice_cycles = slice_cycles;
    }
    config.repeats = repeats.max(1);
    let mut session = OnlineSession::new(built, config).with_service(Arc::clone(cad));
    session = if k > 0 {
        session.with_policy(TopKPolicy { k: k as usize, min_count })
    } else {
        session.with_policy(ThresholdPolicy { min_count })
    };
    if share_cache {
        session = session.with_cache(Arc::clone(cache));
    }
    Ok(session)
}

fn dispatch(
    core: &Server,
    cache: &Arc<CircuitCache>,
    cad: &Arc<CadService>,
    req: Request,
) -> Response {
    let outcome = match req {
        Request::Create { workload, seed, k, min_count, slice_cycles, repeats, share_cache } => {
            return match create_session(
                cache,
                cad,
                &workload,
                seed,
                k,
                min_count,
                slice_cycles,
                repeats,
                share_cache,
            ) {
                Ok(session) => Response::Created(core.create(session)),
                Err(e) => Response::Error(e.to_string()),
            };
        }
        Request::Run(id) => core.run(id).map(|()| Response::Ok),
        Request::Step { id, slices } => core.step(id, slices).map(|()| Response::Ok),
        Request::Patch { id, addr, words } => core.patch(id, addr, &words).map(|()| Response::Ok),
        Request::Query(id) => core.query(id).map(Response::Status),
        Request::Report(id) => core.wait(id).map(Response::Report),
        Request::Fleet => Ok(Response::Fleet(core.fleet())),
        Request::Remove(id) => {
            core.remove(id);
            Ok(Response::Ok)
        }
    };
    outcome.unwrap_or_else(|e| Response::Error(e.to_string()))
}

/// A blocking wire client: typed calls over one framed TCP connection.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a [`WireServer`].
    ///
    /// # Errors
    ///
    /// Propagates the socket connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure (including the server
    /// hanging up mid-exchange) or [`ServeError::Protocol`] on an
    /// undecodable reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&payload)
    }

    /// `call` that expects a specific success shape and converts
    /// `Error` replies into [`ServeError::Protocol`].
    fn expect<T>(
        &mut self,
        req: &Request,
        pick: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ServeError> {
        match self.call(req)? {
            Response::Error(msg) => Err(ServeError::Protocol(msg)),
            resp => pick(resp).ok_or_else(|| ServeError::Protocol("unexpected response".into())),
        }
    }

    /// Creates a session from the server's workload registry.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or a server-side rejection.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        workload: &str,
        seed: u64,
        k: u32,
        min_count: u64,
        slice_cycles: u64,
        repeats: u32,
        share_cache: bool,
    ) -> Result<u64, ServeError> {
        self.expect(
            &Request::Create {
                workload: workload.into(),
                seed,
                k,
                min_count,
                slice_cycles,
                repeats,
                share_cache,
            },
            |r| match r {
                Response::Created(id) => Some(id),
                _ => None,
            },
        )
    }

    /// Serves the session to completion (asynchronously).
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or a server-side rejection.
    pub fn run(&mut self, id: u64) -> Result<(), ServeError> {
        self.expect(&Request::Run(id), |r| matches!(r, Response::Ok).then_some(()))
    }

    /// Grants the session an exact number of scheduler slices.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or a server-side rejection.
    pub fn step(&mut self, id: u64, slices: u64) -> Result<(), ServeError> {
        self.expect(&Request::Step { id, slices }, |r| matches!(r, Response::Ok).then_some(()))
    }

    /// Hot-patches the session's instruction memory.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or a server-side rejection.
    pub fn patch(&mut self, id: u64, addr: u32, words: Vec<u32>) -> Result<(), ServeError> {
        self.expect(&Request::Patch { id, addr, words }, |r| {
            matches!(r, Response::Ok).then_some(())
        })
    }

    /// Reads the session's progress snapshot.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or a server-side rejection.
    pub fn query(&mut self, id: u64) -> Result<crate::SessionSnapshot, ServeError> {
        self.expect(&Request::Query(id), |r| match r {
            Response::Status(s) => Some(s),
            _ => None,
        })
    }

    /// Blocks until the session completes and returns its full report.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures or the session's own failure.
    pub fn report(&mut self, id: u64) -> Result<warp_online::OnlineReport, ServeError> {
        self.expect(&Request::Report(id), |r| match r {
            Response::Report(rep) => Some(rep),
            _ => None,
        })
    }

    /// Reads fleet-wide counters.
    ///
    /// # Errors
    ///
    /// Socket/protocol failures.
    pub fn fleet(&mut self) -> Result<crate::FleetStats, ServeError> {
        self.expect(&Request::Fleet, |r| match r {
            Response::Fleet(f) => Some(f),
            _ => None,
        })
    }
}
