//! **warp-serve**: a sharded, multi-session warp-simulation server.
//!
//! The online runtime of `warp-online` simulates *one* warping system.
//! This crate turns it into a service: a long-running [`Server`] hosts
//! thousands of concurrent sessions — each an owned
//! [`OnlineSession`](warp_online::OnlineSession), i.e. a full simulated
//! MicroBlaze + profiler + OCPM — and a fixed pool of worker threads
//! time-slices the runnable ones through the resumable
//! `advance(max_slices)` state machine. Sessions are driven by client
//! commands (create / run / step / patch / query / report) either
//! in-process against [`Server`] or over TCP through the framed binary
//! protocol in [`proto`] (front-end in [`tcp`]).
//!
//! Three properties carry the design:
//!
//! * **Determinism.** A served session's
//!   [`OnlineReport`](warp_online::OnlineReport) is
//!   bit-identical to a standalone `Orchestrator` run of the same
//!   workload — at any worker count and under any interleaving —
//!   because a session's timeline depends only on the sequence of
//!   `advance` calls applied to it (pinned by `tests/determinism.rs`
//!   across the whole registry at 1 and 8 workers).
//! * **Fair cooperative scheduling.** Workers advance a session at most
//!   one quantum before requeueing it at the back of the ready queue;
//!   parked sessions with no granted slices cost nothing, so mostly
//!   idle fleets scale in memory, not CPU.
//! * **Cross-tenant CAD sharing.** Sessions may attach one shared,
//!   bounded [`CircuitCache`](warp_core::CircuitCache): tenants running
//!   the same kernel over different data hit each other's compiled
//!   circuits and pay only reconfiguration cycles, and the fleet-wide
//!   hit rate is reported by the `serveperf` bench into
//!   `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod proto;
mod server;
pub mod tcp;

pub use error::ServeError;
pub use server::{FleetStats, ServeConfig, Server, SessionId, SessionSnapshot};
