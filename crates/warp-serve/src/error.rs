//! Server-side failures.

use std::fmt;

use warp_online::OnlineError;

use crate::server::SessionId;

/// Why a server operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// The session id was never created, or was already consumed by
    /// [`Server::wait`](crate::Server::wait) or removed.
    UnknownSession(SessionId),
    /// The operation needs a live session but this one completed.
    SessionDone(SessionId),
    /// The session itself failed (simulation fault, verify divergence,
    /// bad patch, CAD error, budget exhaustion).
    Session(OnlineError),
    /// A wire-protocol frame could not be decoded.
    Protocol(String),
    /// Socket-level failure on the wire front-end.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::SessionDone(id) => write!(f, "session {id} already completed"),
            ServeError::Session(e) => write!(f, "session error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
