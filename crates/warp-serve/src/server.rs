//! The sharded session table and the fair-share scheduler.
//!
//! A [`Server`] hosts many [`OnlineSession`]s — each a full online-warp
//! runtime (simulated MicroBlaze + profiler + OCPM) — and time-slices
//! the runnable ones across a fixed pool of worker threads. The design
//! center is the ISSUE's serving model:
//!
//! * **Ownership, not locking.** A session in the table is either
//!   `Parked` (the table owns the boxed state machine), `Running` (a
//!   worker has taken it out and owns it exclusively for one quantum),
//!   or `Done` (only the outcome remains). A session can never be
//!   advanced by two workers at once because only one of them can hold
//!   it; clients that need the machine itself (patch, step) wait on a
//!   condvar until it is parked again.
//! * **One shard per worker.** The session table and ready queue are
//!   split into per-worker shards (a session's home shard is
//!   `id % workers`), so the grant path and the park path touch only
//!   one short shard mutex instead of a fleet-global table lock. A
//!   worker drains its own shard first and steals round-robin from the
//!   others when idle, so load still balances; a fleet-wide `pending`
//!   counter plus a tiny notify-only lock wakes sleeping workers
//!   without ever serializing the slot bookkeeping.
//! * **Ready queues, not polling.** Runnable session ids sit in
//!   per-shard `VecDeque`s; workers block on a condvar when `pending`
//!   is zero. A parked session with no granted slices costs nothing —
//!   no timer, no scan, no wakeup — which is what lets one server hold
//!   thousands of mostly idle tenants.
//! * **Fair round-robin.** A worker advances a session by at most
//!   `quantum_slices` scheduler slices, then pushes it to the *back* of
//!   its shard's ready queue. Long-running sessions therefore
//!   interleave at quantum granularity instead of head-of-line blocking
//!   short ones.
//! * **Slice grants.** Every session carries a budget of granted
//!   slices. [`Server::run`] grants unbounded slices (serve to
//!   completion); [`Server::step`] grants an exact count, which is how
//!   a wire client single-steps a session it is debugging. The workers
//!   decrement grants as they advance, so both modes flow through the
//!   identical scheduling path.
//! * **Per-worker session pools.** Each worker owns a
//!   [`SessionPool`](warp_online::SessionPool) and hands it to every
//!   session it schedules ([`OnlineSession::adopt_pool`]): sessions of
//!   the same workload share one frozen program image and recycle
//!   `System` carcasses, so the steady-state serving path allocates
//!   nothing per session. Pooling is bit-identical plumbing (see
//!   `warp-online/tests/pooling.rs`), so determinism is untouched.
//!
//! Determinism: a session's timeline depends only on the sequence of
//! `advance` calls applied to it, never on wall-clock or on which
//! worker ran it (see the bit-identity tests in `tests/determinism.rs`
//! driving every registry workload at 1 and 8 workers). Attaching a
//! shared [`CircuitCache`](warp_core::CircuitCache) is the one opt-in
//! exception: cross-session cache hits shorten the hitting session's
//! modeled CAD budget, so *which* session pays the cold compile depends
//! on arrival order — the fleet is faster, and each report is still
//! internally consistent, but cross-run bit-identity is traded away.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use warp_online::{
    ImageStore, OnlineError, OnlineReport, OnlineSession, SessionPool, SessionStatus,
};

use crate::error::ServeError;

/// Server-assigned session identifier, unique for the server's life.
pub type SessionId = u64;

/// Tuning knobs of the serving scheduler.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads advancing sessions (clamped to at least 1). The
    /// session table is sharded one shard per worker.
    pub workers: usize,
    /// Scheduler slices one worker runs a session for before requeueing
    /// it (the fairness quantum; clamped to at least 1). With the
    /// default 20k-cycle slices, 32 slices ≈ 640k simulated cycles per
    /// turn.
    pub quantum_slices: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4, quantum_slices: 32 }
    }
}

/// Where a session's state machine currently lives.
enum SlotState {
    /// The table owns it; no worker is advancing it.
    Parked(Box<OnlineSession>),
    /// A worker took it out for one quantum.
    Running,
    /// Completed; only the outcome remains (taken by [`Server::wait`]).
    Done(Option<Result<OnlineReport, OnlineError>>),
}

/// Client-visible progress counters, refreshed every time the session
/// parks (so `query` never has to wait for a running session).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SessionSnapshot {
    /// Simulated cycles accumulated.
    pub cycles: u64,
    /// Instructions retired in software.
    pub instructions: u64,
    /// Scheduler slices executed.
    pub slices: u64,
    /// Warp events landed.
    pub warps: usize,
    /// Timeline cycle of the first landed patch, if any.
    pub time_to_first_warp: Option<u64>,
    /// Whether the session has completed (successfully or not).
    pub done: bool,
}

fn snapshot_of(s: &OnlineSession, done: bool) -> SessionSnapshot {
    SessionSnapshot {
        cycles: s.cycles(),
        instructions: s.instructions(),
        slices: s.slices(),
        warps: s.warp_count(),
        time_to_first_warp: s.time_to_first_warp(),
        done,
    }
}

struct Slot {
    state: SlotState,
    snapshot: SessionSnapshot,
    /// Granted scheduler slices not yet consumed (`u64::MAX` = serve to
    /// completion).
    grant: u64,
    /// Whether the id is already in the ready queue (guards against
    /// double-queueing when grants arrive while queued).
    queued: bool,
}

#[derive(Default)]
struct ShardInner {
    slots: HashMap<SessionId, Slot>,
    ready: VecDeque<SessionId>,
}

/// One worker's slice of the session table. All slot bookkeeping for a
/// session happens under its home shard's lock only.
#[derive(Default)]
struct Shard {
    inner: Mutex<ShardInner>,
    /// Signals clients blocked on this shard (patch, wait): a slot
    /// parked or finished.
    park_cv: Condvar,
}

/// Fleet-wide counters (monotonic; survive session removal).
#[derive(Default)]
struct FleetCounters {
    created: AtomicU64,
    finished: AtomicU64,
    failed: AtomicU64,
    quanta: AtomicU64,
    cycles: AtomicU64,
    instructions: AtomicU64,
    warps: AtomicU64,
    ttfw_sum: AtomicU64,
    ttfw_sessions: AtomicU64,
}

/// A fleet-wide metrics snapshot ([`Server::fleet`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FleetStats {
    /// Sessions ever created.
    pub created: u64,
    /// Sessions that ran to a successful report.
    pub finished: u64,
    /// Sessions that ended in an error.
    pub failed: u64,
    /// Scheduling quanta executed by the worker pool.
    pub quanta: u64,
    /// Simulated cycles across all completed sessions.
    pub cycles: u64,
    /// Software instructions retired across all completed sessions.
    pub instructions: u64,
    /// Warp events landed across all completed sessions.
    pub warps: u64,
    /// Sum of time-to-first-warp over sessions that warped (with
    /// [`FleetStats::ttfw_sessions`], yields the fleet mean).
    pub ttfw_sum: u64,
    /// Completed sessions that landed at least one warp.
    pub ttfw_sessions: u64,
}

struct Shared {
    shards: Vec<Shard>,
    /// Ready entries fleet-wide. Incremented before any push, decremented
    /// at every pop; workers sleep only while it reads zero.
    pending: AtomicU64,
    /// Notify-only lock pairing with `work_cv`. Its critical section is
    /// empty — it exists so a "push then notify" cannot slip between a
    /// worker's `pending == 0` check and its wait (the lost-wakeup
    /// window), not to protect any data.
    work_lock: Mutex<()>,
    /// Signals workers: `pending` became non-zero or shutting down.
    work_cv: Condvar,
    shutdown: AtomicBool,
    fleet: FleetCounters,
    /// Program images and compiled warp circuits, shared by every
    /// worker's [`SessionPool`]: a binary is imaged once and each hot
    /// region compiled once for the whole fleet, while `System`
    /// carcasses stay worker-local.
    images: Arc<ImageStore>,
}

impl Shared {
    fn shard_of(&self, id: SessionId) -> &Shard {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Wakes a sleeping worker after `pending` was raised. Must run
    /// *after* the push and its `pending` increment; the empty lock
    /// acquisition orders this notify against any worker mid-check.
    fn signal_work(&self) {
        drop(self.work_lock.lock().expect("serve work lock"));
        self.work_cv.notify_one();
    }
}

/// A multi-session warp-simulation server. Dropping it drains the
/// ready queues' current quanta and joins the workers.
pub struct Server {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
    quantum_slices: u64,
}

impl Server {
    /// Starts the worker pool, one table shard per worker.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            shards: (0..worker_count).map(|_| Shard::default()).collect(),
            pending: AtomicU64::new(0),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            fleet: FleetCounters::default(),
            images: Arc::new(ImageStore::new()),
        });
        let quantum = config.quantum_slices.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("warp-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i, quantum))
                    .expect("spawn warp-serve worker")
            })
            .collect();
        Server { shared, next_id: AtomicU64::new(1), workers, quantum_slices: quantum }
    }

    /// Registers a session, parked with no granted slices. Pair with
    /// [`run`](Server::run) or [`step`](Server::step) to make it
    /// runnable. The session arrives fully configured — policy, shared
    /// [`CircuitCache`](warp_core::CircuitCache), shared
    /// [`CadService`](warp_core::CadService) — because those are
    /// builder decisions of [`OnlineSession`], not of the server. The
    /// one builder choice the server makes for it: a session without a
    /// [`SessionPool`](warp_online::SessionPool) adopts the pool of
    /// whichever worker schedules it.
    pub fn create(&self, session: OnlineSession) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let snapshot = snapshot_of(&session, false);
        let shard = self.shared.shard_of(id);
        shard.inner.lock().expect("serve shard lock").slots.insert(
            id,
            Slot { state: SlotState::Parked(Box::new(session)), snapshot, grant: 0, queued: false },
        );
        self.shared.fleet.created.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Grants unbounded slices: the scheduler serves the session to
    /// completion, interleaved fairly with every other runnable one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if the id was never created or
    /// already waited out; granting to a finished session is a no-op.
    pub fn run(&self, id: SessionId) -> Result<(), ServeError> {
        self.grant(id, u64::MAX)
    }

    /// Grants exactly `slices` more scheduler slices (saturating into
    /// an unbounded grant). The session advances that much and parks
    /// again — the wire protocol's single-step.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if the id was never created or
    /// already waited out.
    pub fn step(&self, id: SessionId, slices: u64) -> Result<(), ServeError> {
        self.grant(id, slices)
    }

    fn grant(&self, id: SessionId, slices: u64) -> Result<(), ServeError> {
        let shard = self.shared.shard_of(id);
        let mut inner = shard.inner.lock().expect("serve shard lock");
        let slot = inner.slots.get_mut(&id).ok_or(ServeError::UnknownSession(id))?;
        if matches!(slot.state, SlotState::Done(_)) {
            return Ok(());
        }
        slot.grant = slot.grant.saturating_add(slices);
        let enqueued = slot.grant > 0 && !slot.queued && matches!(slot.state, SlotState::Parked(_));
        if enqueued {
            slot.queued = true;
            inner.ready.push_back(id);
            self.shared.pending.fetch_add(1, Ordering::SeqCst);
        }
        drop(inner);
        if enqueued {
            self.shared.signal_work();
        }
        Ok(())
    }

    /// Hot-patches the session's instruction memory. Waits until the
    /// session parks (patching never races a quantum), then applies the
    /// write through the live system — the same path the OCPM patches
    /// through, so the next fetch of a patched word decodes fresh.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a bad id,
    /// [`ServeError::SessionDone`] if it already completed, or
    /// [`ServeError::Session`] if the write lands outside instruction
    /// memory.
    pub fn patch(&self, id: SessionId, addr: u32, words: &[u32]) -> Result<(), ServeError> {
        let shard = self.shared.shard_of(id);
        let mut inner = shard.inner.lock().expect("serve shard lock");
        loop {
            let slot = inner.slots.get_mut(&id).ok_or(ServeError::UnknownSession(id))?;
            match &mut slot.state {
                SlotState::Parked(session) => {
                    return session.patch_imem(addr, words).map_err(ServeError::Session);
                }
                SlotState::Done(_) => return Err(ServeError::SessionDone(id)),
                SlotState::Running => {
                    inner = shard.park_cv.wait(inner).expect("serve shard lock");
                }
            }
        }
    }

    /// The session's progress counters, as of the last time it parked.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a bad id.
    pub fn query(&self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let shard = self.shared.shard_of(id);
        let inner = shard.inner.lock().expect("serve shard lock");
        inner.slots.get(&id).map(|s| s.snapshot).ok_or(ServeError::UnknownSession(id))
    }

    /// Blocks until the session completes, removes it from the table,
    /// and returns its [`OnlineReport`].
    ///
    /// A parked session that runs out of grant before finishing would
    /// wait forever, so `wait` also grants unbounded slices first.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a bad id;
    /// [`ServeError::Session`] carries the session's own failure.
    pub fn wait(&self, id: SessionId) -> Result<OnlineReport, ServeError> {
        self.run(id)?;
        let shard = self.shared.shard_of(id);
        let mut inner = shard.inner.lock().expect("serve shard lock");
        loop {
            let slot = inner.slots.get_mut(&id).ok_or(ServeError::UnknownSession(id))?;
            if let SlotState::Done(outcome) = &mut slot.state {
                // `None` only for a session being discarded by
                // `remove` — indistinguishable from already-gone.
                let outcome = outcome.take().ok_or(ServeError::UnknownSession(id))?;
                inner.slots.remove(&id);
                return outcome.map_err(ServeError::Session);
            }
            inner = shard.park_cv.wait(inner).expect("serve shard lock");
        }
    }

    /// Removes a session in any state (a running one is dropped when
    /// its current quantum parks it). Unknown ids are a no-op — remove
    /// is how clients say "I no longer care".
    pub fn remove(&self, id: SessionId) {
        let shard = self.shared.shard_of(id);
        let mut inner = shard.inner.lock().expect("serve shard lock");
        if let Some(slot) = inner.slots.get_mut(&id) {
            match slot.state {
                SlotState::Running => {
                    // The worker holds the machine; mark for discard by
                    // zeroing the grant and parking into Done.
                    slot.grant = 0;
                    slot.state = SlotState::Done(None);
                }
                _ => {
                    inner.slots.remove(&id);
                }
            }
        }
    }

    /// Live session count (any state still in the table).
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.inner.lock().expect("serve shard lock").slots.len())
            .sum()
    }

    /// The fairness quantum workers use, in scheduler slices.
    #[must_use]
    pub fn quantum_slices(&self) -> u64 {
        self.quantum_slices
    }

    /// Fleet-wide monotonic counters.
    #[must_use]
    pub fn fleet(&self) -> FleetStats {
        let f = &self.shared.fleet;
        FleetStats {
            created: f.created.load(Ordering::Relaxed),
            finished: f.finished.load(Ordering::Relaxed),
            failed: f.failed.load(Ordering::Relaxed),
            quanta: f.quanta.load(Ordering::Relaxed),
            cycles: f.cycles.load(Ordering::Relaxed),
            instructions: f.instructions.load(Ordering::Relaxed),
            warps: f.warps.load(Ordering::Relaxed),
            ttfw_sum: f.ttfw_sum.load(Ordering::Relaxed),
            ttfw_sessions: f.ttfw_sessions.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.shared.work_lock.lock().expect("serve work lock"));
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pops the next runnable session, scanning the worker's own shard
/// first and stealing round-robin from the others. Consumes (and
/// accounts for) stale ready entries along the way.
fn claim(
    shared: &Shared,
    me: usize,
    quantum_slices: u64,
) -> Option<(usize, SessionId, Box<OnlineSession>, u64)> {
    let n = shared.shards.len();
    for k in 0..n {
        let si = (me + k) % n;
        let mut inner = shared.shards[si].inner.lock().expect("serve shard lock");
        while let Some(id) = inner.ready.pop_front() {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            let Some(slot) = inner.slots.get_mut(&id) else { continue };
            slot.queued = false;
            if slot.grant == 0 {
                continue;
            }
            let budget = slot.grant.min(quantum_slices);
            match std::mem::replace(&mut slot.state, SlotState::Running) {
                SlotState::Parked(session) => return Some((si, id, session, budget)),
                // Raced with remove(); put the marker back.
                other => {
                    slot.state = other;
                    continue;
                }
            }
        }
    }
    None
}

fn worker_loop(shared: &Shared, me: usize, quantum_slices: u64) {
    // One pool per worker, all sharing the server's image store:
    // recycled `System` carcasses stay core-local (the carcass mutex is
    // uncontended) while images and compiled circuits are fleet-wide.
    let pool = Arc::new(SessionPool::sharing(&shared.images));
    loop {
        let Some((shard_idx, id, mut session, budget)) = claim(shared, me, quantum_slices) else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let guard = shared.work_lock.lock().expect("serve work lock");
            // Re-check under the notify lock: a push that raised
            // `pending` before we got here must not be slept through.
            if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst)
            {
                drop(shared.work_cv.wait(guard).expect("serve work lock"));
            }
            continue;
        };

        // Advance outside every lock: this is the expensive part, and
        // the whole point — many workers simulate many sessions at once.
        session.adopt_pool(&pool);
        let status = session.advance(budget);
        shared.fleet.quanta.fetch_add(1, Ordering::Relaxed);

        // Park the result back into its home shard.
        let shard = &shared.shards[shard_idx];
        let mut inner = shard.inner.lock().expect("serve shard lock");
        let Some(slot) = inner.slots.get_mut(&id) else {
            // Removed while running; drop the machine.
            continue;
        };
        if matches!(slot.state, SlotState::Done(_)) {
            // remove() marked it for discard while we ran.
            inner.slots.remove(&id);
            drop(inner);
            shard.park_cv.notify_all();
            continue;
        }
        slot.grant = slot.grant.saturating_sub(budget);
        slot.snapshot = snapshot_of(&session, status != SessionStatus::Runnable);
        let mut requeued = false;
        match status {
            SessionStatus::Runnable => {
                slot.state = SlotState::Parked(session);
                if slot.grant > 0 {
                    // Back of the queue: round-robin fairness.
                    slot.queued = true;
                    inner.ready.push_back(id);
                    shared.pending.fetch_add(1, Ordering::SeqCst);
                    requeued = true;
                }
            }
            SessionStatus::Finished | SessionStatus::Failed => {
                let f = &shared.fleet;
                match status {
                    SessionStatus::Finished => f.finished.fetch_add(1, Ordering::Relaxed),
                    _ => f.failed.fetch_add(1, Ordering::Relaxed),
                };
                f.cycles.fetch_add(session.cycles(), Ordering::Relaxed);
                f.instructions.fetch_add(session.instructions(), Ordering::Relaxed);
                f.warps.fetch_add(session.warp_count() as u64, Ordering::Relaxed);
                if let Some(ttfw) = session.time_to_first_warp() {
                    f.ttfw_sum.fetch_add(ttfw, Ordering::Relaxed);
                    f.ttfw_sessions.fetch_add(1, Ordering::Relaxed);
                }
                slot.state =
                    SlotState::Done(Some(session.into_outcome().expect("session completed")));
            }
        }
        drop(inner);
        shard.park_cv.notify_all();
        if requeued {
            // Other workers may be asleep while this shard has work.
            shared.signal_work();
        }
    }
}

// A server handle crosses threads freely (wire front-ends run one
// client per thread against one shared server).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<ServeConfig>();
    assert_send_sync::<FleetStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_online::{OnlineConfig, TopKPolicy};

    fn session(name: &str) -> OnlineSession {
        let built = Arc::new(workloads::by_name(name).unwrap().build(MbFeatures::paper_default()));
        OnlineSession::new(built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
    }

    #[test]
    fn serve_one_session_to_completion() {
        let server = Server::start(ServeConfig { workers: 2, quantum_slices: 8 });
        let id = server.create(session("brev"));
        let report = server.wait(id).unwrap();
        assert_eq!(report.exit_code, 0);
        assert_eq!(report.events.len(), 1);
        assert_eq!(server.sessions(), 0, "wait consumes the session");
        let fleet = server.fleet();
        assert_eq!((fleet.created, fleet.finished, fleet.failed), (1, 1, 0));
        assert!(fleet.quanta >= 1);
        assert_eq!(fleet.warps, 1);
        assert_eq!(fleet.ttfw_sessions, 1);
    }

    #[test]
    fn created_sessions_idle_until_granted() {
        let server = Server::start(ServeConfig::default());
        let id = server.create(session("brev"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let snap = server.query(id).unwrap();
        assert_eq!(snap.slices, 0, "no grant, no work");
        assert_eq!(server.fleet().quanta, 0);

        // An exact step grant runs exactly that many slices.
        server.step(id, 3).unwrap();
        while server.query(id).unwrap().slices < 3 {
            std::thread::yield_now();
        }
        // Settle: the worker must not run past the grant.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(server.query(id).unwrap().slices, 3);
    }

    #[test]
    fn many_sessions_interleave_and_all_finish() {
        let server = Server::start(ServeConfig { workers: 4, quantum_slices: 4 });
        let ids: Vec<_> = (0..16)
            .map(|_| {
                let id = server.create(session("brev"));
                server.run(id).unwrap();
                id
            })
            .collect();
        let mut cycles = None;
        for id in ids {
            let report = server.wait(id).unwrap();
            // Identical sessions, identical timelines — regardless of
            // scheduling order.
            let c = *cycles.get_or_insert(report.cycles);
            assert_eq!(report.cycles, c);
            assert_eq!(report.events.len(), 1);
        }
        let fleet = server.fleet();
        assert_eq!(fleet.finished, 16);
        assert!(fleet.quanta >= 16, "quantum fairness implies many turns");
    }

    #[test]
    fn unknown_and_removed_sessions_error() {
        let server = Server::start(ServeConfig { workers: 1, quantum_slices: 8 });
        assert!(matches!(server.run(99), Err(ServeError::UnknownSession(99))));
        assert!(matches!(server.query(99), Err(ServeError::UnknownSession(99))));
        let id = server.create(session("brev"));
        server.remove(id);
        assert!(matches!(server.query(id), Err(ServeError::UnknownSession(_))));
    }

    #[test]
    fn patch_waits_for_park_and_applies() {
        let server = Server::start(ServeConfig { workers: 2, quantum_slices: 2 });
        let id = server.create(session("brev"));
        server.step(id, 1).unwrap();
        // Address far outside imem: the error proves the write reached
        // the live system even while the scheduler owns the session.
        let err = server.patch(id, u32::MAX - 64, &[1]).unwrap_err();
        assert!(matches!(err, ServeError::Session(_)));
    }

    #[test]
    fn sessions_spread_across_shards_and_steal_cleanly() {
        // 4 shards, ids land round-robin; a single hot shard's work is
        // stolen by the other workers and everything still completes.
        let server = Server::start(ServeConfig { workers: 4, quantum_slices: 2 });
        let ids: Vec<_> = (0..8).map(|_| server.create(session("brev"))).collect();
        for &id in &ids {
            server.run(id).unwrap();
        }
        for id in ids {
            let report = server.wait(id).unwrap();
            assert_eq!(report.exit_code, 0);
        }
        assert_eq!(server.fleet().finished, 8);
    }
}
