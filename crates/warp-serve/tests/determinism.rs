//! The acceptance pin: a served session's report is **bit-identical**
//! to a standalone `Orchestrator` run of the same seeded workload — for
//! every workload in the registry, at 1 worker and at 8 workers, with
//! all sessions in flight concurrently so quanta genuinely interleave.
//!
//! No shared circuit cache here, deliberately: cross-session cache hits
//! shorten the hitting session's modeled CAD budget, so a shared cache
//! makes *which* session pays the cold compile depend on arrival order.
//! That opt-in trade is exercised by `tests/shared_cache.rs`; this test
//! pins the default serving mode, where tenancy is invisible.

use std::sync::Arc;

use mb_isa::MbFeatures;
use warp_core::CadService;
use warp_online::{OnlineConfig, OnlineSession, Orchestrator, TopKPolicy};
use warp_serve::{ServeConfig, Server};

const SEED: u64 = 0xC0FFEE;
const POLICY: TopKPolicy = TopKPolicy { k: 2, min_count: 256 };

fn serve_whole_registry_with(workers: usize) {
    let names: Vec<String> = workloads::all().iter().map(|w| w.name.to_string()).collect();

    // Standalone references, one per workload.
    let reference: Vec<_> = names
        .iter()
        .map(|name| {
            let built =
                workloads::by_name(name).unwrap().build_seeded(MbFeatures::paper_default(), SEED);
            Orchestrator::new(&built, OnlineConfig::default()).with_policy(POLICY).run().unwrap()
        })
        .collect();

    // The same workloads served concurrently through one scheduler,
    // with a deliberately small quantum so sessions interleave, and one
    // shared CAD pool so background compiles contend for workers.
    let server = Server::start(ServeConfig { workers, quantum_slices: 8 });
    let cad = Arc::new(CadService::from_env());
    let ids: Vec<_> = names
        .iter()
        .map(|name| {
            let built = Arc::new(
                workloads::by_name(name).unwrap().build_seeded(MbFeatures::paper_default(), SEED),
            );
            let session = OnlineSession::new(built, OnlineConfig::default())
                .with_policy(POLICY)
                .with_service(Arc::clone(&cad));
            let id = server.create(session);
            server.run(id).unwrap();
            id
        })
        .collect();

    for ((id, name), reference) in ids.into_iter().zip(&names).zip(&reference) {
        let served = server.wait(id).unwrap();
        assert_eq!(
            &served, reference,
            "served report for {name:?} at {workers} workers diverged from standalone run"
        );
    }
    assert_eq!(server.fleet().finished, names.len() as u64);
}

#[test]
fn whole_registry_bit_identical_at_one_worker() {
    serve_whole_registry_with(1);
}

#[test]
fn whole_registry_bit_identical_at_eight_workers() {
    serve_whole_registry_with(8);
}

/// Interleaving granularity itself must be invisible: serving the same
/// session with a 1-slice quantum and a huge quantum yields the same
/// report.
#[test]
fn quantum_size_is_invisible_to_the_timeline() {
    let session = |quantum: u64| {
        let built = Arc::new(
            workloads::by_name("crc32").unwrap().build_seeded(MbFeatures::paper_default(), SEED),
        );
        let server = Server::start(ServeConfig { workers: 2, quantum_slices: quantum });
        let id =
            server.create(OnlineSession::new(built, OnlineConfig::default()).with_policy(POLICY));
        server.run(id).unwrap();
        server.wait(id).unwrap()
    };
    assert_eq!(session(1), session(1 << 20));
}
