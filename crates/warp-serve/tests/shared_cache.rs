//! Concurrent shared-cache behavior (ISSUE satellite 3): many threads
//! warping identical and distinct kernels through one bounded, evicting
//! [`CircuitCache`] must observe bit-identical artifacts on hits and
//! must never lose an insertion, and a served fleet of same-kernel
//! tenants must show a nonzero cross-session hit rate.

use std::sync::Arc;

use mb_isa::MbFeatures;
use warp_core::pipeline;
use warp_core::CircuitCache;
use warp_online::{OnlineConfig, OnlineSession, TopKPolicy};
use warp_profiler::HotRegion;
use warp_serve::{ServeConfig, Server};

fn decompiled_kernel(name: &str) -> warp_core::pipeline::DecompiledKernel {
    let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
    let region = HotRegion { head: built.kernel.head, tail: built.kernel.tail, count: 4096 };
    pipeline::decompile(&built, &region).unwrap()
}

/// N threads hammer one bounded cache with the *same* kernel: exactly
/// one compile may win the slot, every hit must hand back the same
/// artifact bit-for-bit, and no thread may observe a torn entry.
#[test]
fn identical_kernels_share_one_artifact() {
    let cache = Arc::new(CircuitCache::bounded(4));
    let decompiled = Arc::new(decompiled_kernel("brev"));

    let results: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let decompiled = Arc::clone(&decompiled);
            std::thread::spawn(move || cache.lookup_or_compile(&decompiled).unwrap())
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    let (reference, _) = &results[0];
    for (artifact, _) in &results {
        assert_eq!(artifact.fingerprint, reference.fingerprint);
        assert_eq!(artifact.circuit.compiled.bitstream, reference.circuit.compiled.bitstream);
        assert_eq!(artifact.circuit.model, reference.circuit.model);
        assert_eq!(artifact.dpm, reference.dpm);
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 1, "one kernel, one slot");
    assert_eq!(stats.hits + stats.misses, 8, "every thread either hit or compiled");
    assert!(stats.hits >= 1, "concurrent same-kernel lookups must share");
    assert_eq!(stats.evictions, 0);
}

/// Distinct kernels racing through a cache big enough for all of them:
/// none may be lost, and each remains servable bit-identically.
#[test]
fn distinct_kernels_are_never_lost() {
    let names = ["brev", "crc32", "fir", "g3fax"];
    let cache = Arc::new(CircuitCache::bounded(names.len()));

    let handles: Vec<_> = names
        .iter()
        .map(|name| {
            let cache = Arc::clone(&cache);
            let name = name.to_string();
            std::thread::spawn(move || {
                let decompiled = decompiled_kernel(&name);
                let (first, _) = cache.lookup_or_compile(&decompiled).unwrap();
                // A second lookup must hit and serve the same artifact.
                let (again, hit) = cache.lookup_or_compile(&decompiled).unwrap();
                (first, again, hit)
            })
        })
        .collect();

    for h in handles {
        let (first, again, hit) = h.join().unwrap();
        assert!(hit, "second lookup of a resident kernel must hit");
        assert_eq!(first.circuit.compiled.bitstream, again.circuit.compiled.bitstream);
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, names.len(), "no insertion may be lost");
    assert_eq!(stats.evictions, 0, "capacity covers the working set");
    assert_eq!(stats.misses, names.len() as u64);
    assert!(stats.hits >= names.len() as u64);
}

/// More kernels than slots: the cache must evict (counting each one)
/// instead of growing, and evicted kernels must recompile bit-identically
/// on their way back in.
#[test]
fn eviction_pressure_keeps_the_cache_bounded() {
    let names = ["brev", "crc32", "fir", "g3fax", "canrdr"];
    let cache = Arc::new(CircuitCache::bounded(2));

    let handles: Vec<_> = names
        .iter()
        .map(|name| {
            let cache = Arc::clone(&cache);
            let name = name.to_string();
            std::thread::spawn(move || {
                let decompiled = decompiled_kernel(&name);
                cache.lookup_or_compile(&decompiled).unwrap().0
            })
        })
        .collect();
    let first_pass: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let stats = cache.stats();
    assert!(cache.len() <= 2, "bounded cache grew past capacity");
    assert!(stats.evictions >= (names.len() - 2) as u64);

    // Whatever was evicted comes back bit-identical.
    for (name, earlier) in names.iter().zip(&first_pass) {
        let (recompiled, _) = cache.lookup_or_compile(&decompiled_kernel(name)).unwrap();
        assert_eq!(recompiled.circuit.compiled.bitstream, earlier.circuit.compiled.bitstream);
        assert_eq!(recompiled.dpm, earlier.dpm);
    }
}

/// The serving payoff: a fleet of tenants running the *same* kernel
/// over different seeded data through one shared cache pays one cold
/// compile; everyone else warm-starts (nonzero cross-session hit rate),
/// and computation still verifies per-tenant (each session checks its
/// own golden model).
#[test]
fn same_kernel_tenants_warm_start_from_each_other() {
    let cache = Arc::new(CircuitCache::bounded(8));
    let server = Server::start(ServeConfig { workers: 4, quantum_slices: 8 });
    let spec = workloads::by_name("brev").unwrap();

    let ids: Vec<_> = (0..12)
        .map(|seed| {
            let built = Arc::new(spec.build_seeded(MbFeatures::paper_default(), 1000 + seed));
            let session = OnlineSession::new(built, OnlineConfig::default())
                .with_policy(TopKPolicy { k: 1, min_count: 256 })
                .with_cache(Arc::clone(&cache));
            let id = server.create(session);
            server.run(id).unwrap();
            id
        })
        .collect();

    let mut cache_hits = 0;
    for id in ids {
        let report = server.wait(id).unwrap();
        assert_eq!(report.exit_code, 0, "every tenant's data must verify");
        assert_eq!(report.events.len(), 1);
        if report.events[0].cache_hit {
            cache_hits += 1;
        }
    }
    assert!(cache_hits >= 1, "cross-session hits must occur");
    let stats = cache.stats();
    assert!(stats.hit_rate() > 0.0, "fleet-wide hit rate must be nonzero");
    assert_eq!(stats.entries, 1, "one kernel in the fleet, one slot used");
}
