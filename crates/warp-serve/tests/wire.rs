//! End-to-end TCP: the framed protocol against a live socket, with the
//! determinism pin extended *through the wire* — a report decoded off
//! the socket equals a standalone `Orchestrator` run bit-for-bit.

use std::sync::Arc;

use mb_isa::MbFeatures;
use warp_core::CircuitCache;
use warp_online::{OnlineConfig, Orchestrator, TopKPolicy};
use warp_serve::tcp::{Client, WireServer};
use warp_serve::{ServeConfig, ServeError};

fn start_server() -> std::net::SocketAddr {
    let server = WireServer::bind(
        "127.0.0.1:0",
        ServeConfig { workers: 4, quantum_slices: 16 },
        Arc::new(CircuitCache::bounded(32)),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let _accept = server.spawn();
    addr
}

#[test]
fn served_report_over_tcp_matches_standalone_run() {
    let addr = start_server();
    let mut client = Client::connect(addr).unwrap();

    let seed = 7;
    let id = client.create("brev", seed, 1, 256, 0, 1, false).unwrap();
    client.run(id).unwrap();
    let over_wire = client.report(id).unwrap();

    let built = workloads::by_name("brev").unwrap().build_seeded(MbFeatures::paper_default(), seed);
    let standalone = Orchestrator::new(&built, OnlineConfig::default())
        .with_policy(TopKPolicy { k: 1, min_count: 256 })
        .run()
        .unwrap();

    assert_eq!(over_wire, standalone, "wire round-trip must be lossless and deterministic");
}

#[test]
fn step_query_and_fleet_over_tcp() {
    let addr = start_server();
    let mut client = Client::connect(addr).unwrap();

    let id = client.create("crc32", 1, 1, 256, 0, 1, false).unwrap();
    let before = client.query(id).unwrap();
    assert_eq!(before.slices, 0, "created sessions idle until granted");

    client.step(id, 5).unwrap();
    // Step is asynchronous; poll the snapshot until the grant drains.
    let snap = loop {
        let snap = client.query(id).unwrap();
        if snap.slices >= 5 || snap.done {
            break snap;
        }
        std::thread::yield_now();
    };
    assert!(snap.cycles > 0);

    client.run(id).unwrap();
    let report = client.report(id).unwrap();
    assert_eq!(report.exit_code, 0);

    let fleet = client.fleet().unwrap();
    assert_eq!(fleet.finished, 1);
    assert!(fleet.cycles >= report.cycles);
}

#[test]
fn wire_errors_are_structured() {
    let addr = start_server();
    let mut client = Client::connect(addr).unwrap();

    // Unknown workload name.
    let err = client.create("no-such-kernel", 0, 1, 256, 0, 1, false).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(msg) if msg.contains("no-such-kernel")));

    // Unknown session id.
    let err = client.run(999).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(msg) if msg.contains("unknown session")));

    // A patch outside instruction memory surfaces the session's error.
    let id = client.create("brev", 0, 1, 256, 0, 1, false).unwrap();
    let err = client.patch(id, u32::MAX - 64, vec![1]).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(msg) if msg.contains("session error")));
}

#[test]
fn shared_cache_tenants_over_tcp_report_hits() {
    let addr = start_server();
    let mut client = Client::connect(addr).unwrap();

    let ids: Vec<_> = (0..6)
        .map(|seed| {
            let id = client.create("brev", seed, 1, 256, 0, 1, true).unwrap();
            client.run(id).unwrap();
            id
        })
        .collect();
    let mut hits = 0;
    for id in ids {
        let report = client.report(id).unwrap();
        assert_eq!(report.exit_code, 0);
        if report.events.first().is_some_and(|e| e.cache_hit) {
            hits += 1;
        }
    }
    assert!(hits >= 1, "same-kernel tenants over TCP must warm-start from each other");
}
