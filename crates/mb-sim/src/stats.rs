//! Execution statistics.

use std::fmt;

use mb_isa::OpClass;

/// Per-class instruction and cycle counters for one execution.
///
/// [`record`](ExecStats::record) sits on the simulator's hottest path,
/// so it touches exactly one slot of each array; the run loop tracks its
/// cycle budget from [`System::step`]'s return value rather than polling
/// these counters, and the grand totals are summed on demand.
///
/// Equality compares only the architectural counters (per-class
/// instructions and cycles, branch totals). The engine-coverage tier
/// counters are deliberately excluded: *which* engine retires an
/// instruction depends on dispatch batching — a budget boundary cuts a
/// trace chain where a monolithic run would keep chaining — so they are
/// diagnostics about the simulator, not properties of the simulated
/// execution.
///
/// [`System::step`]: crate::System::step
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    instret: [u64; OpClass::ALL.len()],
    cycles: [u64; OpClass::ALL.len()],
    /// Number of taken branches.
    pub branches_taken: u64,
    /// Number of not-taken branches.
    pub branches_not_taken: u64,
    /// Number of backward (negative-displacement) taken branches — the
    /// events the warp profiler watches.
    pub backward_taken: u64,
    /// Instructions retired through the superblock tier: the first body
    /// (and first guard) of each block dispatch, plus careful-mode
    /// op-at-a-time block retirement. See [`ExecStats::engine_coverage`].
    block_instret: u64,
    /// Instructions retired through the megablock trace tier: bodies and
    /// guards chained in place past a dispatch's first iteration.
    trace_instret: u64,
}

impl ExecStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction of `class` costing `cycles`.
    #[inline(always)]
    pub fn record(&mut self, class: OpClass, cycles: u32) {
        let i = class.index();
        self.instret[i] += 1;
        self.cycles[i] += u64::from(cycles);
    }

    /// Records `iterations` retirements of the same fully-fused block
    /// body in one scaled update from its precomputed per-class deltas:
    /// O(classes) total instead of one [`record`] call per instruction
    /// per iteration. The megablock trace tier retires whole iterations
    /// inside a single dispatch, where per-iteration bookkeeping would
    /// rival the cost of a two-or-three-op body; the sums are identical
    /// because every iteration contributes the same deltas. Block
    /// bodies contain no branches, so the branch counters are
    /// untouched.
    ///
    /// [`record`]: ExecStats::record
    #[inline]
    pub(crate) fn record_block_scaled(
        &mut self,
        class_insns: &[u32; OpClass::ALL.len()],
        class_cycles: &[u32; OpClass::ALL.len()],
        iterations: u64,
    ) {
        for i in 0..OpClass::ALL.len() {
            self.instret[i] += u64::from(class_insns[i]) * iterations;
            self.cycles[i] += u64::from(class_cycles[i]) * iterations;
        }
    }

    /// Records a batch of retired loop-guard branches of one class:
    /// `retired` guards costing `cycles` total, `taken` of which
    /// branched. Guards are backward by construction, so every taken
    /// guard is also a taken backward branch.
    #[inline]
    pub(crate) fn record_guards(&mut self, class: OpClass, cycles: u64, retired: u64, taken: u64) {
        let i = class.index();
        self.instret[i] += retired;
        self.cycles[i] += cycles;
        self.branches_taken += taken;
        self.backward_taken += taken;
        self.branches_not_taken += retired - taken;
    }

    /// Attributes `insns` retired instructions to the superblock tier.
    /// The hot per-instruction [`record`](ExecStats::record) path stays
    /// untouched: engine attribution is batched at dispatch boundaries,
    /// and the step tier falls out by subtraction.
    #[inline]
    pub(crate) fn attribute_block(&mut self, insns: u64) {
        self.block_instret += insns;
    }

    /// Attributes `insns` retired instructions to the megablock trace
    /// tier (iterations chained in place beyond a dispatch's first).
    #[inline]
    pub(crate) fn attribute_trace(&mut self, insns: u64) {
        self.trace_instret += insns;
    }

    /// Total retired instructions (summed on demand; `record` stays
    /// minimal because it runs once per simulated instruction).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instret.iter().sum()
    }

    /// Instructions retired through the superblock tier.
    #[must_use]
    pub fn block_instructions(&self) -> u64 {
        self.block_instret
    }

    /// Instructions retired through the megablock trace tier.
    #[must_use]
    pub fn trace_instructions(&self) -> u64 {
        self.trace_instret
    }

    /// Instructions retired by per-instruction stepping (everything the
    /// block and trace tiers did not claim).
    #[must_use]
    pub fn step_instructions(&self) -> u64 {
        self.instructions().saturating_sub(self.block_instret + self.trace_instret)
    }

    /// Fractions of retired instructions per execution tier, as
    /// `(step, block, trace)`; zeros when nothing retired. These are the
    /// engine-coverage counters the simulation-throughput harness
    /// publishes — a workload whose trace fraction is low cannot gain
    /// from trace chaining no matter how fast that tier is.
    #[must_use]
    pub fn engine_coverage(&self) -> (f64, f64, f64) {
        let total = self.instructions();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.step_instructions() as f64 / t,
            self.block_instret as f64 / t,
            self.trace_instret as f64 / t,
        )
    }

    /// Total cycles (summed on demand).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Retired instructions of one class.
    #[must_use]
    pub fn instructions_of(&self, class: OpClass) -> u64 {
        self.instret[class.index()]
    }

    /// Cycles spent in one class.
    #[must_use]
    pub fn cycles_of(&self, class: OpClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Cycles per instruction; 0 when nothing retired.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        let n = self.instructions();
        if n == 0 {
            0.0
        } else {
            self.cycles() as f64 / n as f64
        }
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        for i in 0..self.instret.len() {
            self.instret[i] += other.instret[i];
            self.cycles[i] += other.cycles[i];
        }
        self.branches_taken += other.branches_taken;
        self.branches_not_taken += other.branches_not_taken;
        self.backward_taken += other.backward_taken;
        self.block_instret += other.block_instret;
        self.trace_instret += other.trace_instret;
    }
}

impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        self.instret == other.instret
            && self.cycles == other.cycles
            && self.branches_taken == other.branches_taken
            && self.branches_not_taken == other.branches_not_taken
            && self.backward_taken == other.backward_taken
    }
}

impl Eq for ExecStats {}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions, {} cycles (CPI {:.2})",
            self.instructions(),
            self.cycles(),
            self.cpi()
        )?;
        for class in OpClass::ALL {
            let n = self.instructions_of(class);
            if n > 0 {
                writeln!(f, "  {class:>13}: {n:>10} insns, {:>10} cycles", self.cycles_of(class))?;
            }
        }
        write!(
            f,
            "  branches: {} taken ({} backward), {} not taken",
            self.branches_taken, self.backward_taken, self.branches_not_taken
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = ExecStats::new();
        s.record(OpClass::Alu, 1);
        s.record(OpClass::Alu, 1);
        s.record(OpClass::Mul, 3);
        assert_eq!(s.instructions(), 3);
        assert_eq!(s.cycles(), 5);
        assert_eq!(s.instructions_of(OpClass::Alu), 2);
        assert_eq!(s.cycles_of(OpClass::Mul), 3);
        assert!((s.cpi() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cpi_is_zero() {
        assert_eq!(ExecStats::new().cpi(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ExecStats::new();
        a.record(OpClass::Load, 2);
        a.branches_taken = 3;
        let mut b = ExecStats::new();
        b.record(OpClass::Load, 2);
        b.backward_taken = 1;
        a.merge(&b);
        assert_eq!(a.instructions_of(OpClass::Load), 2);
        assert_eq!(a.branches_taken, 3);
        assert_eq!(a.backward_taken, 1);
    }

    #[test]
    fn engine_coverage_partitions_retired_instructions() {
        let mut s = ExecStats::new();
        for _ in 0..10 {
            s.record(OpClass::Alu, 1);
        }
        s.attribute_block(3);
        s.attribute_trace(5);
        assert_eq!(s.block_instructions(), 3);
        assert_eq!(s.trace_instructions(), 5);
        assert_eq!(s.step_instructions(), 2);
        let (step, block, trace) = s.engine_coverage();
        assert!((step - 0.2).abs() < 1e-12);
        assert!((block - 0.3).abs() < 1e-12);
        assert!((trace - 0.5).abs() < 1e-12);
        assert_eq!(ExecStats::new().engine_coverage(), (0.0, 0.0, 0.0));

        // Tier counters are batching diagnostics: excluded from equality,
        // but summed by merge.
        let other = ExecStats { instret: s.instret, cycles: s.cycles, ..ExecStats::default() };
        assert_eq!(s, other);
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.block_instructions(), 6);
        assert_eq!(merged.trace_instructions(), 10);
    }

    #[test]
    fn display_mentions_classes() {
        let mut s = ExecStats::new();
        s.record(OpClass::Mul, 3);
        let text = s.to_string();
        assert!(text.contains("mul"));
        assert!(text.contains("CPI"));
    }
}
