//! Lockstep lane engine: N instances of one program executed over
//! structure-of-arrays state with shared fetch and divergence masks.
//!
//! A [`LaneGroup`] runs `LANES` copies of a single binary — different
//! data, same code — the way a SIMT machine runs a warp: **one**
//! predecode store, **one** fused-block/megablock-trace store, and one
//! dispatch loop are shared by every lane, while each lane owns its
//! architectural column (registers, carry, PC, `imm` prefix, data BRAM,
//! OPB bus, statistics). While active lanes agree on the PC, whole
//! blocks and loop traces retire *lane-vectorized*: each lowered
//! [`Effect`] is matched once and applied across the register planes,
//! so the per-op dispatch cost — the dominant cost of the scalar
//! engines — is amortized `LANES`-ways.
//!
//! Divergence is handled with a per-lane active mask, never with
//! speculation: a lane leaves the mask at the exact architectural
//! boundary the scalar engine would have owned (guard side exit,
//! per-lane budget expiry, OPB access, fault) and continues on a
//! lane-native scalar path — the same [`exec_insn`] interpreter the
//! [`System`] step engine runs, viewed through that lane's plane column
//! — until it reaches the group's reconvergence PC or the next fused
//! block head. Lockstep execution is therefore bit-identical to running
//! the same `LANES` systems sequentially: registers, data memory,
//! statistics, stop reasons, and slice boundaries all match, which the
//! lane-fleet equality suite pins across every workload.

use std::sync::Arc;

use mb_isa::{MemSize, Program, Reg};

use crate::block::{exec_effect_lanes, Block, Effect};
use crate::machine::{exec_insn, Exec, ExecLane, Next};
use crate::periph::{OpbBus, Peripheral, EXIT_PORT_BASE, OPB_BASE};
use crate::predecode::Predecoded;
use crate::{Bram, Cpu, ExecStats, ExitPort, MbConfig, Outcome, RunError, StopReason, System};

/// Stable engine identifier the lockstep lane engine reports in
/// `BENCH_sim.json` (`lockstep` mode) and the CI schema gate checks —
/// deliberately not a [`crate::Engine`] variant, because that enum
/// enumerates the single-instance dispatch tiers of a [`System`].
pub const LOCKSTEP_ENGINE: &str = "lockstep_lanes";

/// One lane's architectural view over the group's planes: the
/// [`ExecLane`] implementation that lets the scalar interpreter
/// [`exec_insn`] run a diverged lane in place — no state swapping, no
/// second interpreter to keep in sync.
struct LaneView<'a, const LANES: usize> {
    regs: &'a mut [[u32; LANES]; 32],
    carry: &'a mut [bool; LANES],
    imm: &'a mut [Option<u16>; LANES],
    dmem: &'a mut Bram,
    opb: &'a mut OpbBus,
    lane: usize,
}

impl<const LANES: usize> ExecLane for LaneView<'_, LANES> {
    #[inline]
    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() & 31][self.lane]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index() & 31][self.lane] = v;
        self.regs[0][self.lane] = 0;
    }

    #[inline]
    fn carry(&self) -> bool {
        self.carry[self.lane]
    }

    #[inline]
    fn set_carry(&mut self, c: bool) {
        self.carry[self.lane] = c;
    }

    #[inline]
    fn set_imm_prefix(&mut self, hi: i16) {
        self.imm[self.lane] = Some(hi as u16);
    }

    #[inline]
    fn take_imm(&mut self, imm16: i16) -> u32 {
        match self.imm[self.lane].take() {
            Some(hi) => (u32::from(hi) << 16) | u32::from(imm16 as u16),
            None => imm16 as i32 as u32,
        }
    }

    #[inline]
    fn clear_imm_prefix(&mut self) {
        self.imm[self.lane] = None;
    }

    #[inline]
    fn lane_load(&mut self, pc: u32, addr: u32, size: MemSize) -> Result<(u32, u32), RunError> {
        if addr >= OPB_BASE {
            let Some((m, off)) = self.opb.find(addr) else {
                return Err(RunError::UnmappedAddress { pc, addr });
            };
            let r = m.dev.read(off, self.dmem);
            Ok((r.value, r.wait))
        } else {
            let value = self.dmem.read(addr, size).map_err(|err| RunError::Mem { pc, err })?;
            Ok((value, 0))
        }
    }

    #[inline]
    fn lane_store(
        &mut self,
        pc: u32,
        addr: u32,
        value: u32,
        size: MemSize,
    ) -> Result<u32, RunError> {
        if addr >= OPB_BASE {
            let Some((m, off)) = self.opb.find(addr) else {
                return Err(RunError::UnmappedAddress { pc, addr });
            };
            Ok(m.dev.write(off, value, self.dmem))
        } else {
            self.dmem.write(addr, value, size).map_err(|err| RunError::Mem { pc, err })?;
            Ok(0)
        }
    }
}

/// `LANES` lockstep instances of one program over structure-of-arrays
/// state, sharing a single predecode and fused-block store.
///
/// Construction rejects cache configurations: caches make per-op costs
/// state-dependent and per-instance, which is exactly what lockstep
/// retirement amortizes away. (The scalar [`System`] keeps its careful
/// per-op path for caches-on runs.)
pub struct LaneGroup<const LANES: usize> {
    /// Shared fetch side: instruction BRAM, predecode store, and block
    /// store. Its own CPU/dmem/OPB stay at reset — lanes never touch
    /// them.
    sys: System,
    /// Register planes, register-major: `regs[r][lane]`.
    regs: [[u32; LANES]; 32],
    carry: [bool; LANES],
    imm: [Option<u16>; LANES],
    pc: [u32; LANES],
    halted: [Option<u32>; LANES],
    dmem: Vec<Bram>,
    opb: Vec<OpbBus>,
    stats: Vec<ExecStats>,
}

impl<const LANES: usize> LaneGroup<LANES> {
    /// Creates a lane group per the configuration, each lane with its
    /// own data BRAM and an exit port mapped at [`EXIT_PORT_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration enables an instruction or data
    /// cache, or if `LANES` is zero.
    #[must_use]
    pub fn new(config: MbConfig) -> Self {
        assert!(LANES > 0, "a lane group needs at least one lane");
        assert!(
            config.icache.is_none() && config.dcache.is_none(),
            "lockstep lanes require a cache-less configuration"
        );
        let dmem = (0..LANES).map(|_| Bram::new(config.dmem_bytes)).collect();
        let opb = (0..LANES)
            .map(|_| {
                let mut bus = OpbBus::default();
                bus.map(EXIT_PORT_BASE, 16, Box::new(ExitPort::new()));
                bus
            })
            .collect();
        LaneGroup {
            sys: System::new(config),
            regs: [[0; LANES]; 32],
            carry: [false; LANES],
            imm: [None; LANES],
            pc: [0; LANES],
            halted: [None; LANES],
            dmem,
            opb,
            stats: (0..LANES).map(|_| ExecStats::new()).collect(),
        }
    }

    /// The number of lanes in the group.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        LANES
    }

    /// The shared system configuration.
    #[must_use]
    pub fn config(&self) -> &MbConfig {
        self.sys.config()
    }

    /// Loads a program into the shared instruction memory and points
    /// every lane's PC at its base address.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Mem`] if the program does not fit.
    pub fn load_program(&mut self, program: &Program) -> Result<(), RunError> {
        self.sys.load_program(program)?;
        self.pc = [program.base; LANES];
        Ok(())
    }

    /// Loads words into one lane's data memory.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Mem`] if the region does not fit.
    pub fn load_data(&mut self, lane: usize, addr: u32, words: &[u32]) -> Result<(), RunError> {
        self.dmem[lane].load_words(addr, words).map_err(|err| RunError::Mem { pc: 0, err })
    }

    /// Maps a peripheral into one lane's OPB window.
    pub fn map_peripheral(&mut self, lane: usize, base: u32, size: u32, dev: Box<dyn Peripheral>) {
        self.opb[lane].map(base, size, dev);
    }

    /// The shared instruction BRAM.
    #[must_use]
    pub fn imem(&self) -> &Bram {
        self.sys.imem()
    }

    /// Mutable shared instruction BRAM — the hot-patch interface. A
    /// patch invalidates the shared predecode and block stores exactly
    /// as on a [`System`]; every lane observes it from its next fetch.
    pub fn imem_mut(&mut self) -> &mut Bram {
        self.sys.imem_mut()
    }

    /// One lane's data BRAM.
    #[must_use]
    pub fn dmem(&self, lane: usize) -> &Bram {
        &self.dmem[lane]
    }

    /// Mutable access to one lane's data BRAM (for test setup).
    pub fn dmem_mut(&mut self, lane: usize) -> &mut Bram {
        &mut self.dmem[lane]
    }

    /// One lane's accumulated execution statistics.
    #[must_use]
    pub fn stats(&self, lane: usize) -> &ExecStats {
        &self.stats[lane]
    }

    /// Whether one lane has written its exit port.
    #[must_use]
    pub fn halted(&self, lane: usize) -> Option<u32> {
        self.halted[lane]
    }

    /// Materializes one lane's plane column as an ordinary [`Cpu`] —
    /// the representation the bit-equality suites compare against a
    /// sequential [`System`] run.
    #[must_use]
    pub fn cpu(&self, lane: usize) -> Cpu {
        let mut cpu = Cpu::new();
        for (r, plane) in self.regs.iter().enumerate() {
            cpu.regs_mut()[r] = plane[lane];
        }
        cpu.set_pc(self.pc[lane]);
        cpu.set_carry(self.carry[lane]);
        cpu.set_imm_prefix_raw(self.imm[lane]);
        cpu
    }

    /// Eagerly builds the shared predecode and block stores, exactly as
    /// [`System::prewarm`] — one warm covers every lane.
    pub fn prewarm(&mut self) {
        self.sys.prewarm();
    }

    /// Borrows one lane's architectural column as an [`ExecLane`].
    fn lane_view(&mut self, lane: usize) -> LaneView<'_, LANES> {
        let LaneGroup { regs, carry, imm, dmem, opb, .. } = self;
        LaneView { regs, carry, imm, dmem: &mut dmem[lane], opb: &mut opb[lane], lane }
    }

    /// Per-lane mirror of the scalar step engine's statistics
    /// recording (`System::record` without the sink).
    #[inline]
    fn record_lane(&mut self, lane: usize, pc: u32, d: &Predecoded, exec: &Exec) {
        self.stats[lane].record(d.class, exec.cycles);
        if let Some(t) = exec.taken {
            if t {
                self.stats[lane].branches_taken += 1;
                if exec.target.is_some_and(|tt| tt <= pc) {
                    self.stats[lane].backward_taken += 1;
                }
            } else {
                self.stats[lane].branches_not_taken += 1;
            }
        }
    }

    /// Executes one instruction (plus its delay slot if taken) on one
    /// lane — [`System::step`] viewed through the lane's plane column,
    /// with fetch going through the shared predecode store.
    fn step_lane(&mut self, lane: usize) -> Result<u32, RunError> {
        let pc = self.pc[lane];
        let d = self.sys.fetch_shared(pc)?;
        let exec = {
            let mut view = self.lane_view(lane);
            exec_insn(&mut view, pc, &d)?
        };
        self.record_lane(lane, pc, &d, &exec);
        let mut total = exec.cycles;
        let mut touched_opb = exec.ea.is_some_and(|a| a >= OPB_BASE);

        match exec.next {
            Next::Seq => self.pc[lane] = pc.wrapping_add(4),
            Next::Jump(t) => self.pc[lane] = t,
            Next::JumpAfterDelay(t) => {
                let dpc = pc.wrapping_add(4);
                let dd = self.sys.fetch_shared(dpc)?;
                if dd.control_flow {
                    return Err(RunError::BranchInDelaySlot { pc: dpc });
                }
                let dexec = {
                    let mut view = self.lane_view(lane);
                    exec_insn(&mut view, dpc, &dd)?
                };
                self.record_lane(lane, dpc, &dd, &dexec);
                total += dexec.cycles;
                touched_opb |= dexec.ea.is_some_and(|a| a >= OPB_BASE);
                self.pc[lane] = t;
            }
        }

        if (touched_opb || !self.sys.config().predecode) && self.halted[lane].is_none() {
            self.halted[lane] = self.opb[lane].exit_request();
        }
        Ok(total)
    }

    /// Applies the statistics a vectorized trace dispatch batched up
    /// for one lane — the per-lane mirror of the scalar engine's
    /// `flush_trace_stats`.
    #[inline]
    fn flush_lane_trace_stats(
        &mut self,
        lane: usize,
        b: &Block,
        iters: u64,
        guards: u64,
        guards_taken: u64,
        guard_cycles: u64,
    ) {
        if iters > 0 {
            self.stats[lane].record_block_scaled(&b.class_insns, &b.class_cycles, iters);
        }
        if guards > 0 {
            let g = b.guard.as_ref().expect("guard retirements imply a chained guard");
            self.stats[lane].record_guards(g.class, guard_cycles, guards, guards_taken);
        }
        // Mirror the scalar engine's tier attribution exactly: lane
        // statistics are compared against System runs for equality.
        let body = b.ops.len() as u64;
        self.stats[lane].attribute_block(iters.min(1) * body + guards.min(1));
        self.stats[lane].attribute_trace(iters.saturating_sub(1) * body + guards.saturating_sub(1));
    }

    /// Drops one lane out of a vectorized dispatch on a fault, leaving
    /// it at the exact state the scalar engine's fault path produces:
    /// retired prefix flushed per-insn, a fused `imm` prefix restored
    /// before a faulting Type-A access, PC on the faulting op.
    #[allow(clippy::too_many_arguments)]
    fn fault_lane(
        &mut self,
        lane: usize,
        b: &Block,
        i: usize,
        iters: u64,
        guards: u64,
        guards_taken: u64,
        guard_cycles: u64,
        err: RunError,
        done: &mut [Option<Result<Outcome, RunError>>; LANES],
    ) {
        if matches!(b.ops[i].effect, Effect::Load { .. } | Effect::Store { .. }) {
            if let Some(prev) = i.checked_sub(1).map(|p| &b.ops[p]) {
                if let Effect::ImmFused { hi } = prev.effect {
                    self.imm[lane] = Some(hi as u16);
                }
            }
        }
        for op in &b.ops[..i] {
            self.stats[lane].record(op.class, op.cycles);
        }
        self.pc[lane] = b.head.wrapping_add(4 * i as u32);
        self.flush_lane_trace_stats(lane, b, iters, guards, guards_taken, guard_cycles);
        done[lane] = Some(Err(err));
    }

    /// Drops one lane out of a vectorized dispatch after an op touched
    /// its OPB window — the lane-side mirror of the block engine's OPB
    /// early-out: the prefix retires per-insn, the exit port is polled,
    /// and the shared block store learns the split point for every
    /// lane.
    #[allow(clippy::too_many_arguments)]
    fn opb_retire_lane(
        &mut self,
        lane: usize,
        b: &Block,
        i: usize,
        last_cycles: u32,
        body: u64,
        total: u64,
        iters: u64,
        guards: u64,
        guards_taken: u64,
        guard_cycles: u64,
        cycles: &mut [u64; LANES],
    ) {
        for op in &b.ops[..i] {
            self.stats[lane].record(op.class, op.cycles);
        }
        self.stats[lane].record(b.ops[i].class, last_cycles);
        let op_pc = b.head.wrapping_add(4 * i as u32);
        self.pc[lane] = op_pc.wrapping_add(4);
        self.sys.learn_opb(op_pc);
        if self.halted[lane].is_none() {
            self.halted[lane] = self.opb[lane].exit_request();
        }
        self.flush_lane_trace_stats(lane, b, iters, guards, guards_taken, guard_cycles);
        cycles[lane] += total + body + u64::from(last_cycles);
    }

    /// Retires one fused block — iterated in place while its loop guard
    /// holds — across every lane in `mask` simultaneously.
    ///
    /// This is the scalar trace loop (`System::exec_block`) transposed:
    /// each infallible effect is matched once and applied to all active
    /// lane columns ([`exec_effect_lanes`]); memory ops run lane by
    /// lane (per-lane dmem/OPB, per-lane faults); the guard evaluates
    /// per lane and lanes whose trip count ends leave the mask with
    /// their PC on the side exit. Because every masked lane retires the
    /// identical op sequence, one set of batch counters (`iters`,
    /// guard tallies, `total` cycles) is valid for each lane at the
    /// moment it drops out, so statistics and budgets stay
    /// bit-identical to sequential runs.
    ///
    /// The caller guarantees every masked lane sits at `b.head` with no
    /// pending `imm` prefix and that the first body fits its remaining
    /// budget (`b.cycles <= max_cycles - cycles[lane]`).
    fn exec_block_lanes(
        &mut self,
        b: &Block,
        mut mask: [bool; LANES],
        max_cycles: u64,
        cycles: &mut [u64; LANES],
        done: &mut [Option<Result<Outcome, RunError>>; LANES],
    ) {
        debug_assert!((0..LANES).all(|l| {
            !mask[l] || (self.pc[l] == b.head && self.imm[l].is_none() && done[l].is_none())
        }));
        let rem: [u64; LANES] =
            core::array::from_fn(|l| if mask[l] { max_cycles - cycles[l] } else { 0 });
        // The tightest masked budget: while `total` stays below it, no
        // lane can expire and the per-lane budget walk is skippable. A
        // lane dropping out mid-dispatch only raises the true minimum,
        // so the cached value stays a safe lower bound.
        let min_rem = (0..LANES).filter(|&l| mask[l]).map(|l| rem[l]).min().unwrap_or(0);
        // Fullness powers the vector fast paths: the `FULL` effect
        // instantiation and the all-lanes guard retirement. Any lane
        // leaving the mask clears it.
        let mut full = mask.iter().all(|&m| m);
        let loops_to_head = b.guard.as_ref().is_some_and(|g| g.target == b.head);
        let guard_pc = b.head.wrapping_add(4 * b.ops.len() as u32);
        let mut total = 0u64;
        let mut iters = 0u64;
        let mut guards = 0u64;
        let mut guards_taken = 0u64;
        let mut guard_cycles = 0u64;

        'iterate: loop {
            let mut body = 0u64;
            for (i, op) in b.ops.iter().enumerate() {
                let vectorized = if full {
                    exec_effect_lanes::<LANES, true>(
                        &op.effect,
                        &mut self.regs,
                        &mut self.carry,
                        &mut self.imm,
                        &mask,
                    )
                } else {
                    exec_effect_lanes::<LANES, false>(
                        &op.effect,
                        &mut self.regs,
                        &mut self.carry,
                        &mut self.imm,
                        &mask,
                    )
                };
                if vectorized {
                    body += u64::from(op.cycles);
                    continue;
                }
                // Memory op: the operands are matched once, then each
                // lane resolves its own address against its own memory
                // (per-lane faults and OPB early-outs).
                let op_pc = b.head.wrapping_add(4 * i as u32);
                let (size, rd, rai, rbi, imm32, is_store) = match op.effect {
                    Effect::Load { size, rd, ra, rb } => {
                        (size, rd, ra.index() & 31, Some(rb.index() & 31), 0, false)
                    }
                    Effect::LoadImm { size, rd, ra, imm } => {
                        (size, rd, ra.index() & 31, None, imm, false)
                    }
                    Effect::Store { size, rd, ra, rb } => {
                        (size, rd, ra.index() & 31, Some(rb.index() & 31), 0, true)
                    }
                    Effect::StoreImm { size, rd, ra, imm } => {
                        (size, rd, ra.index() & 31, None, imm, true)
                    }
                    _ => unreachable!("exec_effect_lanes handles every non-memory effect"),
                };
                let rdi = rd.index() & 31;
                // Indexing (not iterating) is load-bearing here: the
                // body reads several plane rows and calls `&mut self`
                // fault/retire helpers, which an iterator borrow of any
                // one plane would block.
                #[allow(clippy::needless_range_loop)]
                for l in 0..LANES {
                    if !mask[l] {
                        continue;
                    }
                    let offset = match rbi {
                        Some(rb) => self.regs[rb][l],
                        None => imm32,
                    };
                    let addr = self.regs[rai][l].wrapping_add(offset);
                    if addr >= OPB_BASE {
                        let opb_wait: Option<u32> = match self.opb[l].find(addr) {
                            None => None,
                            Some((m, off)) => Some(if is_store {
                                let v = self.regs[rdi][l];
                                m.dev.write(off, v, &mut self.dmem[l])
                            } else {
                                let r = m.dev.read(off, &mut self.dmem[l]);
                                self.regs[rdi][l] = r.value;
                                if rdi == 0 {
                                    self.regs[0][l] = 0;
                                }
                                r.wait
                            }),
                        };
                        match opb_wait {
                            None => {
                                self.fault_lane(
                                    l,
                                    b,
                                    i,
                                    iters,
                                    guards,
                                    guards_taken,
                                    guard_cycles,
                                    RunError::UnmappedAddress { pc: op_pc, addr },
                                    done,
                                );
                            }
                            Some(wait) => {
                                self.opb_retire_lane(
                                    l,
                                    b,
                                    i,
                                    op.cycles + wait,
                                    body,
                                    total,
                                    iters,
                                    guards,
                                    guards_taken,
                                    guard_cycles,
                                    cycles,
                                );
                            }
                        }
                        mask[l] = false;
                        full = false;
                    } else {
                        let res = if is_store {
                            let v = self.regs[rdi][l];
                            self.dmem[l].write(addr, v, size)
                        } else {
                            self.dmem[l].read(addr, size).map(|v| {
                                self.regs[rdi][l] = v;
                                if rdi == 0 {
                                    self.regs[0][l] = 0;
                                }
                            })
                        };
                        if let Err(err) = res {
                            self.fault_lane(
                                l,
                                b,
                                i,
                                iters,
                                guards,
                                guards_taken,
                                guard_cycles,
                                RunError::Mem { pc: op_pc, err },
                                done,
                            );
                            mask[l] = false;
                            full = false;
                        }
                    }
                }
                if !mask.iter().any(|&m| m) {
                    return;
                }
                body += u64::from(op.cycles);
            }

            debug_assert_eq!(body, b.cycles, "static block cost must match actual retirement");
            iters += 1;
            total += body;

            let Some(g) = &b.guard else {
                for l in 0..LANES {
                    if mask[l] {
                        self.pc[l] = guard_pc;
                        self.flush_lane_trace_stats(
                            l,
                            b,
                            iters,
                            guards,
                            guards_taken,
                            guard_cycles,
                        );
                        cycles[l] += total;
                    }
                }
                return;
            };

            // Per-lane budget boundary, before the guard: the scalar
            // engine stops here still holding a trailing fused `imm`'s
            // prefix. While `total` is under the tightest masked budget
            // no lane can have expired, so the walk is skipped outright.
            if total >= min_rem {
                for l in 0..LANES {
                    if mask[l] && total >= rem[l] {
                        self.pc[l] = guard_pc;
                        if let Some(Effect::ImmFused { hi }) = b.ops.last().map(|o| o.effect) {
                            self.imm[l] = Some(hi as u16);
                        }
                        self.flush_lane_trace_stats(
                            l,
                            b,
                            iters,
                            guards,
                            guards_taken,
                            guard_cycles,
                        );
                        cycles[l] += total;
                        mask[l] = false;
                        full = false;
                    }
                }
                if !mask.iter().any(|&m| m) {
                    return;
                }
            }

            // Guard fast path: with every lane active, no link register
            // to write, and the next body provably inside the tightest
            // budget, an all-lanes-taken guard needs only the shared
            // batch counters — the per-lane walk below is pure
            // bookkeeping for lanes that are provably not leaving.
            if full
                && loops_to_head
                && g.link.is_none()
                && (total + u64::from(g.lat_taken)).saturating_add(b.cycles) <= min_rem
                && match g.cond {
                    None => true,
                    Some((cond, ra)) => self.regs[ra.index() & 31].iter().all(|&v| cond.eval(v)),
                }
            {
                guards += 1;
                guards_taken += 1;
                guard_cycles += u64::from(g.lat_taken);
                total += u64::from(g.lat_taken);
                continue 'iterate;
            }

            // Retire the guard per lane. Lanes whose trip count ends
            // (guard failed, jumped off-trace, or the next body would
            // cross a boundary the scalar engine must own) leave the
            // mask with their batched statistics flushed; the rest
            // share the taken path and iterate.
            for l in 0..LANES {
                if !mask[l] {
                    continue;
                }
                let taken =
                    g.cond.is_none_or(|(cond, ra)| cond.eval(self.regs[ra.index() & 31][l]));
                if let Some(rd) = g.link {
                    let rdi = rd.index() & 31;
                    self.regs[rdi][l] = guard_pc;
                    if rdi == 0 {
                        self.regs[0][l] = 0;
                    }
                }
                let gcycles = if taken { g.lat_taken } else { g.lat_not_taken };
                let continues = taken
                    && loops_to_head
                    && (total + u64::from(gcycles)).saturating_add(b.cycles) <= rem[l];
                if !continues {
                    self.pc[l] = if taken { g.target } else { guard_pc.wrapping_add(4) };
                    self.flush_lane_trace_stats(
                        l,
                        b,
                        iters,
                        guards + 1,
                        guards_taken + u64::from(taken),
                        guard_cycles + u64::from(gcycles),
                    );
                    cycles[l] += total + u64::from(gcycles);
                    mask[l] = false;
                    full = false;
                }
            }
            if !mask.iter().any(|&m| m) {
                return;
            }
            // Every continuing lane took the guard back to the head.
            guards += 1;
            guards_taken += 1;
            guard_cycles += u64::from(g.lat_taken);
            total += u64::from(g.lat_taken);
            continue 'iterate;
        }
    }

    /// Advances one diverged lane scalar-style until it reaches the
    /// group's reconvergence PC, the next fused-block head (a fresh
    /// vectorization opportunity), its budget, its exit, or an error.
    /// Each dispatch unit mirrors the scalar `run_budgeted` body
    /// exactly: try the block/trace at the PC (falling into the sticky
    /// stepping tail once one no longer fits), otherwise step.
    #[allow(clippy::too_many_arguments)]
    fn scalar_advance(
        &mut self,
        lane: usize,
        target: u32,
        use_blocks: bool,
        max_cycles: u64,
        cycles: &mut [u64; LANES],
        stepping_tail: &mut [bool; LANES],
        done: &mut [Option<Result<Outcome, RunError>>; LANES],
    ) {
        let mut first = true;
        loop {
            if done[lane].is_some() || self.halted[lane].is_some() || cycles[lane] >= max_cycles {
                return;
            }
            let eligible = use_blocks && !stepping_tail[lane] && self.imm[lane].is_none();
            let blk: Option<Arc<Block>> =
                if eligible { self.sys.block_at(self.pc[lane]) } else { None };
            if !first && (blk.is_some() || self.pc[lane] == target) {
                // Reconvergence point: stop so the round scheduler can
                // regroup this lane with the others.
                return;
            }
            first = false;
            if let Some(b) = blk {
                if b.cycles <= max_cycles - cycles[lane] {
                    let mut mask = [false; LANES];
                    mask[lane] = true;
                    self.exec_block_lanes(&b, mask, max_cycles, cycles, done);
                    continue;
                }
                stepping_tail[lane] = true;
            }
            match self.step_lane(lane) {
                Ok(c) => cycles[lane] += u64::from(c),
                Err(err) => {
                    done[lane] = Some(Err(err));
                    return;
                }
            }
        }
    }

    /// Runs every lane until it exits or consumes `max_cycles` cycles,
    /// returning one [`Outcome`] (or [`RunError`]) per lane.
    ///
    /// Slice semantics match [`System::run_slice`] lane-for-lane: the
    /// budget is per lane and per call, state persists across calls (a
    /// halted lane reports `Exited` with zero cycles on later calls),
    /// and mid-run `imem` patches through [`LaneGroup::imem_mut`] take
    /// effect on every lane's next fetch.
    ///
    /// The scheduler is round-based: each round settles finished lanes,
    /// picks the most common PC among live lanes as the reconvergence
    /// point, retires the fused block there lane-vectorized for every
    /// lane that agrees, and scalar-advances the rest toward the group
    /// (stopping at the next block head — a diverged lane rejoining the
    /// loop becomes next round's majority). Every live lane makes
    /// progress every round, so rounds terminate at the budget.
    pub fn run(&mut self, max_cycles: u64) -> [Result<Outcome, RunError>; LANES] {
        let start_insns: [u64; LANES] = core::array::from_fn(|l| self.stats[l].instructions());
        let mut cycles = [0u64; LANES];
        let mut done: [Option<Result<Outcome, RunError>>; LANES] = core::array::from_fn(|_| None);
        let mut stepping_tail = [false; LANES];
        let use_blocks = self.sys.blocks_enabled();

        loop {
            // Settle finished lanes. Exit is checked before the budget,
            // matching the scalar loop's ordering contract: a
            // retirement that writes the exit port and exhausts the
            // budget reports `Exited`, never `CycleLimit`.
            for l in 0..LANES {
                if done[l].is_some() {
                    continue;
                }
                if let Some(code) = self.halted[l] {
                    done[l] = Some(Ok(Outcome {
                        stop: StopReason::Exited(code),
                        cycles: cycles[l],
                        instructions: self.stats[l].instructions() - start_insns[l],
                    }));
                } else if cycles[l] >= max_cycles {
                    done[l] = Some(Ok(Outcome {
                        stop: StopReason::CycleLimit,
                        cycles: cycles[l],
                        instructions: self.stats[l].instructions() - start_insns[l],
                    }));
                }
            }
            let live: [bool; LANES] = core::array::from_fn(|l| done[l].is_none());
            if !live.iter().any(|&b| b) {
                break;
            }

            // Reconvergence PC: the most common live PC (ties to the
            // lowest) — the loop head the largest subgroup sits at. The
            // quadratic popularity count only runs on actual divergence;
            // the common fully-converged round settles with one scan.
            let first_live_pc = (0..LANES).find(|&l| live[l]).map(|l| self.pc[l]).unwrap_or(0);
            let conv_pc = if (0..LANES).all(|l| !live[l] || self.pc[l] == first_live_pc) {
                first_live_pc
            } else {
                let mut conv_pc = 0u32;
                let mut conv_n = 0usize;
                for l in 0..LANES {
                    if !live[l] {
                        continue;
                    }
                    let p = self.pc[l];
                    let n = (0..LANES).filter(|&k| live[k] && self.pc[k] == p).count();
                    if n > conv_n || (n == conv_n && p < conv_pc) {
                        conv_pc = p;
                        conv_n = n;
                    }
                }
                conv_pc
            };

            let mut handled = [false; LANES];
            if use_blocks {
                let mut mask: [bool; LANES] = core::array::from_fn(|l| {
                    live[l] && self.pc[l] == conv_pc && self.imm[l].is_none() && !stepping_tail[l]
                });
                if mask.iter().any(|&m| m) {
                    if let Some(b) = self.sys.block_at(conv_pc) {
                        for l in 0..LANES {
                            if mask[l] && b.cycles > max_cycles - cycles[l] {
                                // Sticky stepping tail, exactly as the
                                // scalar dispatch loop: this lane owns
                                // its budget boundary instruction by
                                // instruction from here on.
                                mask[l] = false;
                                stepping_tail[l] = true;
                            }
                        }
                        if mask.iter().any(|&m| m) {
                            handled = mask;
                            self.exec_block_lanes(&b, mask, max_cycles, &mut cycles, &mut done);
                        }
                    }
                }
            }

            for l in 0..LANES {
                if live[l] && !handled[l] {
                    self.scalar_advance(
                        l,
                        conv_pc,
                        use_blocks,
                        max_cycles,
                        &mut cycles,
                        &mut stepping_tail,
                        &mut done,
                    );
                }
            }
        }

        done.map(|d| d.expect("every lane settled before the rounds ended"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Assembler, Insn, Reg};

    /// Countdown loop: r3 starts from dmem[0], decrements to zero, then
    /// stores r4 (accumulated sum) and exits with code from r5.
    fn loop_program() -> Program {
        let mut a = Assembler::new(0);
        a.push(Insn::lwi(Reg::R3, Reg::R0, 0)); // r3 = dmem[0] (trip count)
        a.li(Reg::R4, 0);
        a.label("loop");
        a.push(Insn::addk(Reg::R4, Reg::R4, Reg::R3));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        a.push(Insn::swi(Reg::R4, Reg::R0, 4)); // dmem[4] = sum
        a.li(Reg::R5, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R4, Reg::R5, 0)); // exit(sum)
        a.finish().unwrap()
    }

    fn run_sequential(
        program: &Program,
        trips: u32,
        config: &MbConfig,
    ) -> (Outcome, Cpu, ExecStats) {
        let mut sys = System::new(config.clone());
        sys.load_program(program).unwrap();
        sys.load_data(0, &[trips]).unwrap();
        let outcome = sys.run(1_000_000).unwrap();
        (outcome, sys.cpu().clone(), sys.stats().clone())
    }

    #[test]
    fn lockstep_matches_sequential_with_divergent_trip_counts() {
        let program = loop_program();
        let config = MbConfig::paper_default();
        let trips = [3u32, 17, 1, 64];

        let mut group: LaneGroup<4> = LaneGroup::new(config.clone());
        group.load_program(&program).unwrap();
        for (l, &t) in trips.iter().enumerate() {
            group.load_data(l, 0, &[t]).unwrap();
        }
        let results = group.run(1_000_000);

        for (l, &t) in trips.iter().enumerate() {
            let (seq_outcome, seq_cpu, seq_stats) = run_sequential(&program, t, &config);
            let lane_outcome = results[l].as_ref().unwrap();
            assert_eq!(*lane_outcome, seq_outcome, "lane {l} outcome");
            assert_eq!(group.cpu(l), seq_cpu, "lane {l} cpu");
            assert_eq!(*group.stats(l), seq_stats, "lane {l} stats");
            let expected_sum = (1..=t).sum::<u32>();
            assert_eq!(group.dmem(l).read_word(4).unwrap(), expected_sum, "lane {l} dmem");
            assert_eq!(group.halted(l), Some(expected_sum), "lane {l} exit code");
        }
    }

    #[test]
    fn lockstep_matches_sequential_on_every_engine_config() {
        let program = loop_program();
        let trips = [5u32, 9];
        for (predecode, blocks, traces) in
            [(true, true, true), (true, true, false), (true, false, false), (false, false, false)]
        {
            let config = MbConfig::paper_default()
                .with_predecode(predecode)
                .with_blocks(blocks)
                .with_traces(traces);
            let mut group: LaneGroup<2> = LaneGroup::new(config.clone());
            group.load_program(&program).unwrap();
            for (l, &t) in trips.iter().enumerate() {
                group.load_data(l, 0, &[t]).unwrap();
            }
            let results = group.run(1_000_000);
            for (l, &t) in trips.iter().enumerate() {
                let (seq_outcome, seq_cpu, seq_stats) = run_sequential(&program, t, &config);
                assert_eq!(*results[l].as_ref().unwrap(), seq_outcome);
                assert_eq!(group.cpu(l), seq_cpu);
                assert_eq!(*group.stats(l), seq_stats);
            }
        }
    }

    #[test]
    fn lockstep_budget_slices_match_one_sequential_run() {
        let program = loop_program();
        let config = MbConfig::paper_default();
        let trips = [40u32, 11, 27];

        let mut group: LaneGroup<3> = LaneGroup::new(config.clone());
        group.load_program(&program).unwrap();
        for (l, &t) in trips.iter().enumerate() {
            group.load_data(l, 0, &[t]).unwrap();
        }
        // Tiny slices force mid-trace budget expiry and stepping tails.
        let mut lane_cycles = [0u64; 3];
        for _ in 0..10_000 {
            let results = group.run(7);
            for (l, r) in results.iter().enumerate() {
                lane_cycles[l] += r.as_ref().unwrap().cycles;
            }
            if (0..3).all(|l| group.halted(l).is_some()) {
                break;
            }
        }
        for (l, &t) in trips.iter().enumerate() {
            let (seq_outcome, seq_cpu, seq_stats) = run_sequential(&program, t, &config);
            assert_eq!(seq_outcome.cycles, lane_cycles[l], "lane {l} sliced cycle total");
            assert_eq!(group.cpu(l), seq_cpu, "lane {l} cpu after slicing");
            assert_eq!(*group.stats(l), seq_stats, "lane {l} stats after slicing");
        }
    }

    #[test]
    fn lane_group_rejects_cache_configs() {
        let mut config = MbConfig::paper_default();
        config.icache = Some(crate::cache::CacheConfig::small());
        let result = std::panic::catch_unwind(|| LaneGroup::<2>::new(config));
        assert!(result.is_err());
    }

    #[test]
    fn halted_lane_reports_exited_with_zero_cycles_on_rerun() {
        let program = loop_program();
        let mut group: LaneGroup<2> = LaneGroup::new(MbConfig::paper_default());
        group.load_program(&program).unwrap();
        group.load_data(0, 0, &[2]).unwrap();
        group.load_data(1, 0, &[4]).unwrap();
        let first = group.run(1_000_000);
        assert!(first.iter().all(|r| r.as_ref().unwrap().exited()));
        let second = group.run(1_000_000);
        for r in &second {
            let o = r.as_ref().unwrap();
            assert!(o.exited());
            assert_eq!(o.cycles, 0);
            assert_eq!(o.instructions, 0);
        }
    }
}
