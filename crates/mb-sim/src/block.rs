//! Superblock store: straight-line runs of predecoded instructions
//! fused into blocks that retire in one dispatch.
//!
//! PR 3 removed per-fetch decoding; the remaining per-instruction cost
//! was the interpreter's dispatch — fetch-slot lookup, per-instruction
//! statistics, sink calls, and the run loop's halt/budget/exit checks.
//! This module hoists all of that to block granularity, the same move
//! block-level emulation engines make (and the paper's own on-chip
//! profiler justifies: it watches *branches*, i.e. block boundaries,
//! not instructions).
//!
//! A [`Block`] is the longest straight-line run starting at a PC that
//! ends at control flow, an unsupported instruction, a PC learned to
//! touch the OPB window, an undecodable word, or a length cap. Each
//! instruction is lowered to an [`Effect`] micro-op with its `imm`
//! prefix statically fused: a block entered with no pending prefix
//! (the dispatcher guarantees it) never materializes prefix state at
//! all — an interior `imm` becomes [`Effect::ImmFused`] and its Type-B
//! consumer carries the resolved 32-bit immediate. The block also
//! carries its precomputed total cycles and per-class histogram deltas,
//! so full-block retirement applies statistics in O(classes), not
//! O(instructions).
//!
//! With loop chaining on (see [`MbConfig::traces`]) a block whose run
//! ends at a non-delay immediate-target branch with a statically
//! backward target also fuses that branch as a [`Guard`], turning the
//! block into a **megablock loop trace**: the engine retires body +
//! guard per dispatch and, when the guard holds and its target is the
//! block's own head, keeps iterating without leaving the dispatch. A
//! guard failure is the side exit — the retired prefix stands and the
//! engine resumes at `pc + 4`, the exact boundary the step engine pins.
//! Backward branches are exactly the events the paper's profiler
//! watches, so the chained shape is the application's critical loop.
//!
//! Invalidation mirrors the predecode store: the store compares
//! [`Bram::generation`] and uses [`Bram::dirty_words_since`] to drop
//! only blocks overlapping the patched words — a block is dropped if
//! *any* of its words changed, *including its guard word*, so the scan
//! walks back one maximum trace length. PCs observed to touch the OPB
//! mid-block are remembered so rebuilt blocks end before them and
//! peripheral accesses always go through [`System::step`], which polls
//! the exit port.
//!
//! [`System`]: crate::System
//! [`System::step`]: crate::System::step
//! [`MbConfig::traces`]: crate::MbConfig::traces

use std::sync::Arc;

use mb_isa::{Cond, Insn, MbFeatures, MemSize, OpClass, Reg, ShiftKind};

use crate::predecode::{DecodeCache, Predecoded};
use crate::Bram;

/// Maximum instructions fused into one block. Bounds both the
/// invalidation back-scan and how much budget a slice must have left
/// before whole-block retirement is used.
pub(crate) const MAX_BLOCK_OPS: usize = 64;

/// One lowered register/memory effect, with immediates resolved
/// (including any `imm` prefix contributed by the preceding in-block
/// instruction) and operands pre-extracted.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Effect {
    /// `add`-family: rd = ra + rb (+ carry in), optionally keeping carry.
    Add { rd: Reg, ra: Reg, rb: Reg, keep: bool, use_c: bool },
    /// `addi`-family with the resolved 32-bit immediate.
    AddImm { rd: Reg, ra: Reg, imm: u32, keep: bool, use_c: bool },
    /// `rsub`-family: rd = rb - ra.
    Rsub { rd: Reg, ra: Reg, rb: Reg, keep: bool, use_c: bool },
    /// `rsubi`-family: rd = imm - ra.
    RsubImm { rd: Reg, ra: Reg, imm: u32, keep: bool, use_c: bool },
    /// `cmp`/`cmpu`.
    Cmp { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// `mul`.
    Mul { rd: Reg, ra: Reg, rb: Reg },
    /// `muli` with the resolved immediate.
    MulImm { rd: Reg, ra: Reg, imm: u32 },
    /// `idiv`/`idivu`.
    Idiv { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// Dynamic barrel shift.
    Bs { rd: Reg, ra: Reg, rb: Reg, kind: ShiftKind },
    /// Constant barrel shift.
    BsImm { rd: Reg, ra: Reg, amount: u32, kind: ShiftKind },
    /// `or`.
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `and`.
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `xor`.
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `andn`.
    Andn { rd: Reg, ra: Reg, rb: Reg },
    /// `ori` with the resolved immediate.
    OrImm { rd: Reg, ra: Reg, imm: u32 },
    /// `andi` with the resolved immediate.
    AndImm { rd: Reg, ra: Reg, imm: u32 },
    /// `xori` with the resolved immediate.
    XorImm { rd: Reg, ra: Reg, imm: u32 },
    /// `andni` with the resolved immediate.
    AndnImm { rd: Reg, ra: Reg, imm: u32 },
    /// `sra`.
    Sra { rd: Reg, ra: Reg },
    /// `src`.
    Src { rd: Reg, ra: Reg },
    /// `srl`.
    Srl { rd: Reg, ra: Reg },
    /// `sext8`.
    Sext8 { rd: Reg, ra: Reg },
    /// `sext16`.
    Sext16 { rd: Reg, ra: Reg },
    /// Register-indexed load.
    Load { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// Immediate-indexed load with the resolved offset.
    LoadImm { size: MemSize, rd: Reg, ra: Reg, imm: u32 },
    /// Register-indexed store.
    Store { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// Immediate-indexed store with the resolved offset.
    StoreImm { size: MemSize, rd: Reg, ra: Reg, imm: u32 },
    /// An `imm` prefix whose upper half was fused into the next op:
    /// retires (1 cycle, `ImmPrefix` class) with no architectural
    /// effect on the success path. The upper half is kept so a fault on
    /// a register-indexed (Type-A) successor can restore the prefix the
    /// step engine would still be holding at the fault point.
    ImmFused {
        /// Upper 16 bits the fused consumer absorbed.
        hi: i16,
    },
    /// An `imm` prefix ending the block: its consumer lies outside, so
    /// the real prefix register must be set (and the dispatcher will
    /// route the consumer through [`crate::System::step`]).
    ImmTrailing {
        /// Upper 16 bits for the next Type-B immediate.
        hi: i16,
    },
}

/// One fused instruction: the lowered effect plus everything the
/// engine needs to retire it (original instruction for trace events and
/// partial flushes, class and static cycle cost for statistics).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockOp {
    pub effect: Effect,
    pub insn: Insn,
    pub class: OpClass,
    pub cycles: u32,
}

/// The fused terminal branch of a megablock loop trace: a non-delay
/// `bci`/`bri` whose target resolved statically to a backward address.
/// Predicted taken — when the condition holds and the target is the
/// block's own head the engine loops without leaving the dispatch; a
/// guard failure is the side exit, falling through to the branch's
/// `pc + 4` with every already-retired instruction standing.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Guard {
    /// The original branch instruction (for trace events).
    pub insn: Insn,
    /// Instruction class (a branch).
    pub class: OpClass,
    /// Condition and condition register; `None` for unconditional `bri`.
    pub cond: Option<(Cond, Reg)>,
    /// Link register written with the branch's own PC, if any.
    pub link: Option<Reg>,
    /// Statically-resolved taken target (`<=` the branch PC).
    pub target: u32,
    /// Taken latency.
    pub lat_taken: u32,
    /// Not-taken (side-exit) latency.
    pub lat_not_taken: u32,
}

/// A fused straight-line block with precomputed retirement aggregates,
/// optionally chained across a backward branch into a loop trace.
#[derive(Debug)]
pub(crate) struct Block {
    /// PC of the first instruction.
    pub head: u32,
    /// The fused op sequence (one op per instruction).
    pub ops: Vec<BlockOp>,
    /// Total static cycles of a full body retirement (guard excluded).
    pub cycles: u64,
    /// Per-class retired-instruction deltas, indexed by `OpClass::index()`.
    pub class_insns: [u32; OpClass::ALL.len()],
    /// Per-class cycle deltas.
    pub class_cycles: [u32; OpClass::ALL.len()],
    /// Per-instruction static cycle costs in order (feeds the batched
    /// per-PC tables in [`crate::TraceSummary`]).
    pub insn_cycles: Vec<u32>,
    /// The backward branch this block was chained across, if any. The
    /// guard instruction sits at `head + 4 * ops.len()`.
    pub guard: Option<Guard>,
}

impl Block {
    /// Instruction-memory words the block covers, guard included —
    /// the span invalidation must treat as one unit.
    pub fn span_words(&self) -> usize {
        self.ops.len() + usize::from(self.guard.is_some())
    }
}

/// The block store's two parallel per-word tables, frozen and shared as
/// one unit: the built blocks and the learned OPB-touching words. They
/// invalidate together ([`BlockStore::invalidate_words`] clears both),
/// so a copy-on-patch detach must copy both or neither.
#[derive(Clone, Debug, Default)]
pub(crate) struct Tables {
    /// Block starting at word index `w` (`pc >> 2`); `None` = not built.
    /// Unbuildable entries cache an empty block so hot dispatch does not
    /// retry them.
    blocks: Vec<Option<Arc<Block>>>,
    /// Words whose instruction was observed touching the OPB window:
    /// blocks end before them, so peripheral accesses (and the exit-port
    /// poll they require) always run through `step`.
    opb: Vec<bool>,
}

/// The store's table storage: privately owned, or a read-only view into
/// a fully-built table pair shared with sibling systems (a frozen
/// [`ProgramImage`](crate::ProgramImage)). Same CoW discipline as the
/// [`Bram`] word storage: reads branch once, the first mutation — a
/// post-patch invalidation or a lazy build of an unvisited entry —
/// detaches a private copy.
#[derive(Clone, Debug)]
enum Store {
    Owned(Tables),
    Shared(Arc<Tables>),
}

impl Store {
    #[inline]
    fn tables(&self) -> &Tables {
        match self {
            Store::Owned(t) => t,
            Store::Shared(a) => a,
        }
    }

    #[inline]
    fn make_owned(&mut self) -> &mut Tables {
        if let Store::Shared(a) = self {
            *self = Store::Owned(a.as_ref().clone());
        }
        match self {
            Store::Owned(t) => t,
            Store::Shared(_) => unreachable!("just detached"),
        }
    }
}

/// Lazily-built block table for one instruction BRAM, keyed by entry PC.
#[derive(Debug)]
pub(crate) struct BlockStore {
    /// The per-word block and OPB tables (possibly a shared image view).
    store: Store,
    /// The [`Bram::generation`] the table was built against.
    generation: u64,
    /// Whether the builder chains backward branches into loop-trace
    /// guards (see [`crate::MbConfig::traces`]).
    chain: bool,
    /// Blocks constructed (observability for invalidation tests).
    pub(crate) built: u64,
}

impl BlockStore {
    /// Creates an empty store that syncs to the BRAM on first use.
    /// `chain` enables guard chaining across backward branches.
    pub fn new(chain: bool) -> Self {
        BlockStore { store: Store::Owned(Tables::default()), generation: u64::MAX, chain, built: 0 }
    }

    /// Brings the tables fully in sync with `imem` (normally lazy on the
    /// next dispatch) — the pre-freeze step of an image capture.
    pub fn sync(&mut self, imem: &Bram) {
        if self.generation != imem.generation() {
            self.resync(imem);
        }
    }

    /// Freezes the built tables into a shareable read-only pair and
    /// switches this store to the shared view (see [`Bram::freeze`]).
    pub fn freeze(&mut self) -> Arc<Tables> {
        if let Store::Owned(t) = &mut self.store {
            self.store = Store::Shared(Arc::new(std::mem::take(t)));
        }
        match &self.store {
            Store::Shared(a) => Arc::clone(a),
            Store::Owned(_) => unreachable!("just frozen"),
        }
    }

    /// Replaces the tables with a shared fully-built pair captured at
    /// `generation` (against the same program words this store's BRAM
    /// now holds). The next mutation detaches a private copy.
    pub fn attach_shared(&mut self, tables: Arc<Tables>, generation: u64) {
        self.store = Store::Shared(tables);
        self.generation = generation;
    }

    /// Returns the (possibly freshly built) non-empty block entered at
    /// `pc`, or `None` when no fusable straight-line run starts there.
    pub fn block_at(
        &mut self,
        decode: &mut DecodeCache,
        imem: &Bram,
        features: &MbFeatures,
        pc: u32,
    ) -> Option<Arc<Block>> {
        if pc & 3 != 0 {
            return None; // misaligned fetch: let `step` fault
        }
        if self.generation != imem.generation() {
            self.resync(imem);
        }
        let w = (pc >> 2) as usize;
        match self.store.tables().blocks.get(w)? {
            Some(b) => {
                // A block with no ops and no guard retires nothing:
                // cached as "unbuildable" so dispatch falls to `step`.
                if b.ops.is_empty() && b.guard.is_none() {
                    None
                } else {
                    Some(Arc::clone(b))
                }
            }
            None => {
                let b = Arc::new(self.build(decode, imem, features, pc));
                self.built += 1;
                let useful = (!b.ops.is_empty() || b.guard.is_some()).then(|| Arc::clone(&b));
                self.store.make_owned().blocks[w] = Some(b);
                useful
            }
        }
    }

    /// Records that the instruction at `pc` touched the OPB window and
    /// drops every block containing it, so rebuilt blocks end before it.
    ///
    /// Already-learned words return immediately: `opb[w]` set implies no
    /// cached block contains `w` (the builder stops at OPB words, and
    /// [`invalidate_words`](Self::invalidate_words) clears blocks and
    /// OPB knowledge together), so there is nothing to drop — and, just
    /// as important, re-learning a word must not detach a shared image
    /// table on every peripheral access of every session.
    pub fn learn_opb(&mut self, pc: u32) {
        let w = (pc >> 2) as usize;
        let t = self.store.tables();
        if w < t.opb.len() && !t.opb[w] {
            self.invalidate_words(w as u32, w as u32);
            self.store.make_owned().opb[w] = true;
        }
    }

    /// Re-syncs to the BRAM: incrementally when the write log bounds the
    /// dirtied words, wholesale otherwise. Only reached after the BRAM
    /// was written, so detaching a shared table here is the
    /// copy-on-patch path, not steady state.
    fn resync(&mut self, imem: &Bram) {
        let words = imem.words().len();
        let dirty = if self.store.tables().blocks.len() == words {
            imem.dirty_words_since(self.generation)
        } else {
            None
        };
        match dirty {
            Some((lo, hi)) => self.invalidate_words(lo, hi),
            None => {
                let t = self.store.make_owned();
                t.blocks.clear();
                t.blocks.resize(words, None);
                t.opb.clear();
                t.opb.resize(words, false);
            }
        }
        self.generation = imem.generation();
    }

    /// Drops every block overlapping the inclusive word range and
    /// forgets OPB knowledge for the range itself (the patched words may
    /// no longer touch the bus). A block spans at most [`MAX_BLOCK_OPS`]
    /// body words plus one guard word, so the back-scan is bounded —
    /// and a patch landing on a trace's guard word drops the whole
    /// chained trace, never leaving a stale loop shape behind.
    fn invalidate_words(&mut self, lo: u32, hi: u32) {
        if self.store.tables().blocks.is_empty() {
            return;
        }
        let t = self.store.make_owned();
        let lo = lo as usize;
        let hi = (hi as usize).min(t.blocks.len() - 1);
        let start = lo.saturating_sub(MAX_BLOCK_OPS);
        for w in start..lo {
            if t.blocks[w].as_ref().is_some_and(|b| w + b.span_words() > lo) {
                t.blocks[w] = None;
            }
        }
        for w in lo..=hi {
            t.blocks[w] = None;
            t.opb[w] = false;
        }
    }

    /// Builds the block entered at `pc` (possibly empty): collect the
    /// straight-line run of predecoded slots, then lower it with static
    /// `imm`-prefix fusion. With chaining on, a run ending at a
    /// non-delay backward `bci`/`bri` fuses that branch as the guard.
    fn build(
        &self,
        decode: &mut DecodeCache,
        imem: &Bram,
        features: &MbFeatures,
        head: u32,
    ) -> Block {
        let t = self.store.tables();
        let mut raw: Vec<Predecoded> = Vec::new();
        let mut pc = head;
        while raw.len() < MAX_BLOCK_OPS {
            let w = (pc >> 2) as usize;
            if w >= t.blocks.len() || t.opb[w] {
                break;
            }
            let Ok(d) = decode.fetch(imem, features, pc) else { break };
            if d.control_flow || !d.supported {
                break;
            }
            raw.push(d);
            pc = pc.wrapping_add(4);
        }
        let mut guard_slot = None;
        if self.chain {
            let w = (pc >> 2) as usize;
            if w < t.blocks.len() && !t.opb[w] {
                if let Ok(d) = decode.fetch(imem, features, pc) {
                    if d.control_flow && d.supported {
                        guard_slot = Some((d, pc));
                    }
                }
            }
        }
        lower(head, &raw, guard_slot)
    }
}

/// Resolves a Type-B immediate against a statically known prefix,
/// exactly as [`crate::Cpu::take_imm`] would at run time.
fn resolve_imm(imm: i16, prefix: Option<i16>) -> u32 {
    match prefix {
        Some(hi) => (u32::from(hi as u16) << 16) | u32::from(imm as u16),
        None => imm as i32 as u32,
    }
}

/// Chains the slot after a straight-line run into a [`Guard`] when it
/// is a non-delay immediate-target branch whose target — resolved
/// against a trailing in-block `imm` prefix, if any — is backward: the
/// predicted-taken loop shape the paper's profiler watches.
/// Register-target branches (`br`, `bc`) have dynamic targets and
/// delay-slot branches split retirement across two PCs; both keep
/// retiring through [`crate::System::step`].
fn chain_guard(d: &Predecoded, pc: u32, prefix: Option<i16>) -> Option<Guard> {
    let (cond, link, target) = match d.insn {
        Insn::Bci { cond, ra, imm, delay: false } => {
            (Some((cond, ra)), None, pc.wrapping_add(resolve_imm(imm, prefix)))
        }
        Insn::Bri { rd, imm, link, absolute, delay: false } => {
            let imm32 = resolve_imm(imm, prefix);
            (None, link.then_some(rd), if absolute { imm32 } else { pc.wrapping_add(imm32) })
        }
        _ => return None,
    };
    if target > pc {
        return None; // forward: not a loop-closing branch
    }
    Some(Guard {
        insn: d.insn,
        class: d.class,
        cond,
        link,
        target,
        lat_taken: d.lat_taken,
        lat_not_taken: d.lat_not_taken,
    })
}

/// Lowers a straight-line run into fused ops. The caller guarantees the
/// block is entered with no pending `imm` prefix, so prefix flow is
/// fully static: an interior `imm` fuses into its successor (every
/// non-`imm` instruction either consumes or clears the prefix), and
/// only a trailing `imm` escapes to the architectural prefix register —
/// unless a guard was chained, in which case the guard is the trailing
/// `imm`'s consumer and the prefix fuses into its static target.
fn lower(head: u32, raw: &[Predecoded], guard_slot: Option<(Predecoded, u32)>) -> Block {
    let trailing_hi = raw.last().and_then(|d| match d.insn {
        Insn::Imm { imm } => Some(imm),
        _ => None,
    });
    let guard = guard_slot.and_then(|(d, pc)| chain_guard(&d, pc, trailing_hi));

    let mut ops = Vec::with_capacity(raw.len());
    let mut insn_cycles = Vec::with_capacity(raw.len());
    let mut cycles = 0u64;
    let mut class_insns = [0u32; OpClass::ALL.len()];
    let mut class_cycles = [0u32; OpClass::ALL.len()];
    let mut pending: Option<i16> = None;

    for (i, d) in raw.iter().enumerate() {
        let prefix = pending.take();
        let effect = match d.insn {
            Insn::Imm { imm } => {
                if i + 1 < raw.len() {
                    pending = Some(imm);
                    Effect::ImmFused { hi: imm }
                } else if guard.is_some() {
                    // The guard consumed the prefix statically (its
                    // target is already resolved), exactly as a Type-B
                    // branch takes the prefix before evaluating.
                    Effect::ImmFused { hi: imm }
                } else {
                    Effect::ImmTrailing { hi: imm }
                }
            }
            Insn::Add { rd, ra, rb, keep_carry, use_carry } => {
                Effect::Add { rd, ra, rb, keep: keep_carry, use_c: use_carry }
            }
            Insn::Rsub { rd, ra, rb, keep_carry, use_carry } => {
                Effect::Rsub { rd, ra, rb, keep: keep_carry, use_c: use_carry }
            }
            Insn::Addi { rd, ra, imm, keep_carry, use_carry } => Effect::AddImm {
                rd,
                ra,
                imm: resolve_imm(imm, prefix),
                keep: keep_carry,
                use_c: use_carry,
            },
            Insn::Rsubi { rd, ra, imm, keep_carry, use_carry } => Effect::RsubImm {
                rd,
                ra,
                imm: resolve_imm(imm, prefix),
                keep: keep_carry,
                use_c: use_carry,
            },
            Insn::Cmp { rd, ra, rb, unsigned } => Effect::Cmp { rd, ra, rb, unsigned },
            Insn::Mul { rd, ra, rb } => Effect::Mul { rd, ra, rb },
            Insn::Muli { rd, ra, imm } => Effect::MulImm { rd, ra, imm: resolve_imm(imm, prefix) },
            Insn::Idiv { rd, ra, rb, unsigned } => Effect::Idiv { rd, ra, rb, unsigned },
            Insn::Bs { rd, ra, rb, kind } => Effect::Bs { rd, ra, rb, kind },
            Insn::Bsi { rd, ra, amount, kind } => {
                Effect::BsImm { rd, ra, amount: u32::from(amount), kind }
            }
            Insn::Or { rd, ra, rb } => Effect::Or { rd, ra, rb },
            Insn::And { rd, ra, rb } => Effect::And { rd, ra, rb },
            Insn::Xor { rd, ra, rb } => Effect::Xor { rd, ra, rb },
            Insn::Andn { rd, ra, rb } => Effect::Andn { rd, ra, rb },
            Insn::Ori { rd, ra, imm } => Effect::OrImm { rd, ra, imm: resolve_imm(imm, prefix) },
            Insn::Andi { rd, ra, imm } => Effect::AndImm { rd, ra, imm: resolve_imm(imm, prefix) },
            Insn::Xori { rd, ra, imm } => Effect::XorImm { rd, ra, imm: resolve_imm(imm, prefix) },
            Insn::Andni { rd, ra, imm } => {
                Effect::AndnImm { rd, ra, imm: resolve_imm(imm, prefix) }
            }
            Insn::Sra { rd, ra } => Effect::Sra { rd, ra },
            Insn::Src { rd, ra } => Effect::Src { rd, ra },
            Insn::Srl { rd, ra } => Effect::Srl { rd, ra },
            Insn::Sext8 { rd, ra } => Effect::Sext8 { rd, ra },
            Insn::Sext16 { rd, ra } => Effect::Sext16 { rd, ra },
            Insn::Load { size, rd, ra, rb } => Effect::Load { size, rd, ra, rb },
            Insn::Loadi { size, rd, ra, imm } => {
                Effect::LoadImm { size, rd, ra, imm: resolve_imm(imm, prefix) }
            }
            Insn::Store { size, rd, ra, rb } => Effect::Store { size, rd, ra, rb },
            Insn::Storei { size, rd, ra, imm } => {
                Effect::StoreImm { size, rd, ra, imm: resolve_imm(imm, prefix) }
            }
            // Control flow never enters a block (the builder stops at
            // it); reaching here would be a builder bug.
            Insn::Br { .. }
            | Insn::Bri { .. }
            | Insn::Bc { .. }
            | Insn::Bci { .. }
            | Insn::Rtsd { .. } => unreachable!("control flow inside a block"),
        };
        cycles += u64::from(d.lat_not_taken);
        class_insns[d.class.index()] += 1;
        class_cycles[d.class.index()] += d.lat_not_taken;
        insn_cycles.push(d.lat_not_taken);
        ops.push(BlockOp { effect, insn: d.insn, class: d.class, cycles: d.lat_not_taken });
    }

    Block { head, ops, cycles, class_insns, class_cycles, insn_cycles, guard }
}

/// Executes one infallible register-to-register effect across every
/// active lane of a structure-of-arrays register file — the lane
/// engine's vectorized complement of the scalar `System::exec_alu`: the
/// effect is matched **once** and the chosen arm loops over the lane
/// columns, so the dispatch cost (and the per-op match misprediction)
/// is amortized across the whole group. Each arm's per-lane body is the
/// scalar arm verbatim, which is what keeps lockstep bit-identical to N
/// sequential runs.
///
/// `regs` is register-major (`regs[r][lane]`), so one op streams
/// through at most three contiguous lane rows. Writes to `r0` are
/// absorbed by re-zeroing its whole row once after the loop — the plane
/// version of [`crate::Cpu::set_reg`]'s branchless re-zero.
///
/// `FULL` is the caller's promise that every lane is active: the
/// per-lane mask loads compile out, the lane loops become straight-line
/// over whole plane rows, and the compiler is free to vectorize them.
/// The caller tracks mask fullness (it already maintains the mask) and
/// picks the instantiation per op — the masked copy stays the safe
/// fallback for partially-diverged groups.
///
/// Returns `false` (having executed nothing) for the four memory
/// effects: those fault, produce effective addresses, and may route to
/// per-lane OPB buses, so the caller owns them lane by lane.
#[allow(clippy::too_many_lines)]
pub(crate) fn exec_effect_lanes<const LANES: usize, const FULL: bool>(
    effect: &Effect,
    regs: &mut [[u32; LANES]; 32],
    carry: &mut [bool; LANES],
    imm: &mut [Option<u16>; LANES],
    mask: &[bool; LANES],
) -> bool {
    use crate::machine::{compare, divide};

    /// `rd[l] = body(ra[l])` over active lanes, then re-zero `r0`.
    macro_rules! unop {
        ($rd:expr, $ra:expr, |$a:ident| $v:expr) => {{
            let (rd, ra) = ($rd.index() & 31, $ra.index() & 31);
            for l in 0..LANES {
                if FULL || mask[l] {
                    let $a = regs[ra][l];
                    regs[rd][l] = $v;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }};
    }

    /// `rd[l] = body(ra[l], rb[l])` over active lanes, then re-zero `r0`.
    macro_rules! binop {
        ($rd:expr, $ra:expr, $rb:expr, |$a:ident, $b:ident| $v:expr) => {{
            let (rd, ra, rb) = ($rd.index() & 31, $ra.index() & 31, $rb.index() & 31);
            for l in 0..LANES {
                if FULL || mask[l] {
                    let $a = regs[ra][l];
                    let $b = regs[rb][l];
                    regs[rd][l] = $v;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }};
    }

    /// The `add`/`rsub` families: wide add of `lhs + rhs + carry-in`,
    /// with the carry plane updated unless the op keeps flags.
    macro_rules! addop {
        ($rd:expr, $ra:expr, $keep:expr, $use_c:expr, $default_cin:expr,
         |$a:ident| $lhs:expr, |$l:ident| $rhs:expr) => {{
            let (rd, ra) = ($rd.index() & 31, $ra.index() & 31);
            for $l in 0..LANES {
                if FULL || mask[$l] {
                    let cin = if $use_c { u64::from(carry[$l]) } else { $default_cin };
                    let $a = regs[ra][$l];
                    let wide = u64::from($lhs) + u64::from($rhs) + cin;
                    if !$keep {
                        carry[$l] = wide >> 32 != 0;
                    }
                    regs[rd][$l] = wide as u32;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }};
    }

    match *effect {
        Effect::Add { rd, ra, rb, keep, use_c } => {
            let rbi = rb.index() & 31;
            addop!(rd, ra, keep, use_c, 0, |a| a, |l| regs[rbi][l]);
        }
        Effect::AddImm { rd, ra, imm, keep, use_c } => {
            addop!(rd, ra, keep, use_c, 0, |a| a, |_l| imm);
        }
        Effect::Rsub { rd, ra, rb, keep, use_c } => {
            let rbi = rb.index() & 31;
            addop!(rd, ra, keep, use_c, 1, |a| !a, |l| regs[rbi][l]);
        }
        Effect::RsubImm { rd, ra, imm, keep, use_c } => {
            addop!(rd, ra, keep, use_c, 1, |a| !a, |_l| imm);
        }
        Effect::Cmp { rd, ra, rb, unsigned } => {
            binop!(rd, ra, rb, |a, b| compare(a, b, unsigned));
        }
        Effect::Mul { rd, ra, rb } => binop!(rd, ra, rb, |a, b| a.wrapping_mul(b)),
        Effect::MulImm { rd, ra, imm } => unop!(rd, ra, |a| a.wrapping_mul(imm)),
        Effect::Idiv { rd, ra, rb, unsigned } => {
            binop!(rd, ra, rb, |a, b| divide(a, b, unsigned));
        }
        Effect::Bs { rd, ra, rb, kind } => binop!(rd, ra, rb, |a, b| kind.apply(a, b)),
        Effect::BsImm { rd, ra, amount, kind } => unop!(rd, ra, |a| kind.apply(a, amount)),
        Effect::Or { rd, ra, rb } => binop!(rd, ra, rb, |a, b| a | b),
        Effect::And { rd, ra, rb } => binop!(rd, ra, rb, |a, b| a & b),
        Effect::Xor { rd, ra, rb } => binop!(rd, ra, rb, |a, b| a ^ b),
        Effect::Andn { rd, ra, rb } => binop!(rd, ra, rb, |a, b| a & !b),
        Effect::OrImm { rd, ra, imm } => unop!(rd, ra, |a| a | imm),
        Effect::AndImm { rd, ra, imm } => unop!(rd, ra, |a| a & imm),
        Effect::XorImm { rd, ra, imm } => unop!(rd, ra, |a| a ^ imm),
        Effect::AndnImm { rd, ra, imm } => unop!(rd, ra, |a| a & !imm),
        Effect::Sra { rd, ra } => {
            let (rd, ra) = (rd.index() & 31, ra.index() & 31);
            for l in 0..LANES {
                if FULL || mask[l] {
                    let a = regs[ra][l];
                    carry[l] = a & 1 != 0;
                    regs[rd][l] = ((a as i32) >> 1) as u32;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }
        Effect::Src { rd, ra } => {
            let (rd, ra) = (rd.index() & 31, ra.index() & 31);
            for l in 0..LANES {
                if FULL || mask[l] {
                    let a = regs[ra][l];
                    let v = (u32::from(carry[l]) << 31) | (a >> 1);
                    carry[l] = a & 1 != 0;
                    regs[rd][l] = v;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }
        Effect::Srl { rd, ra } => {
            let (rd, ra) = (rd.index() & 31, ra.index() & 31);
            for l in 0..LANES {
                if FULL || mask[l] {
                    let a = regs[ra][l];
                    carry[l] = a & 1 != 0;
                    regs[rd][l] = a >> 1;
                }
            }
            if rd == 0 {
                regs[0] = [0; LANES];
            }
        }
        Effect::Sext8 { rd, ra } => unop!(rd, ra, |a| a as u8 as i8 as i32 as u32),
        Effect::Sext16 { rd, ra } => unop!(rd, ra, |a| a as u16 as i16 as i32 as u32),
        Effect::ImmFused { .. } => {}
        Effect::ImmTrailing { hi } => {
            for l in 0..LANES {
                if FULL || mask[l] {
                    imm[l] = Some(hi as u16);
                }
            }
        }
        Effect::Load { .. }
        | Effect::LoadImm { .. }
        | Effect::Store { .. }
        | Effect::StoreImm { .. } => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::encode;

    fn features() -> MbFeatures {
        MbFeatures::paper_default()
    }

    /// Unchained store (PR 5 semantics: blocks end at control flow).
    fn store_with(words: &[Insn]) -> (BlockStore, DecodeCache, Bram) {
        let (_, decode, imem) = chained_store_with(words);
        (BlockStore::new(false), decode, imem)
    }

    /// Chaining store: backward branches fuse into loop-trace guards.
    fn chained_store_with(words: &[Insn]) -> (BlockStore, DecodeCache, Bram) {
        let mut imem = Bram::new(4 * 256).with_write_log();
        for (i, insn) in words.iter().enumerate() {
            imem.write_word((i as u32) * 4, encode(insn)).unwrap();
        }
        (BlockStore::new(true), DecodeCache::new(), imem)
    }

    #[test]
    fn block_ends_before_control_flow() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Xor { rd: Reg::R4, ra: Reg::R5, rb: Reg::R6 },
            Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: -8, delay: false },
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 2);
        assert_eq!(b.cycles, 2);
        assert_eq!(b.class_insns[OpClass::Alu.index()], 2);
        // A block entered *at* the branch is unbuildable (cached empty).
        assert!(store.block_at(&mut decode, &imem, &features(), 8).is_none());
        let built = store.built;
        assert!(store.block_at(&mut decode, &imem, &features(), 8).is_none());
        assert_eq!(store.built, built, "empty blocks must be cached, not rebuilt");
    }

    #[test]
    fn interior_imm_fuses_into_its_consumer() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::Imm { imm: 0x1234u16 as i16 },
            Insn::Addi {
                rd: Reg::R1,
                ra: Reg::R0,
                imm: 0x5678,
                keep_carry: true,
                use_carry: false,
            },
            Insn::ret(),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(matches!(b.ops[0].effect, Effect::ImmFused { hi } if hi == 0x1234u16 as i16));
        match b.ops[1].effect {
            Effect::AddImm { imm, .. } => assert_eq!(imm, 0x1234_5678),
            ref e => panic!("expected fused AddImm, got {e:?}"),
        }
        // Both instructions still retire individually.
        assert_eq!(b.ops.len(), 2);
        assert_eq!(b.class_insns[OpClass::ImmPrefix.index()], 1);
    }

    #[test]
    fn trailing_imm_escapes_to_the_prefix_register() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Imm { imm: 7 },
            Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: -8, delay: false },
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 2);
        assert!(matches!(b.ops[1].effect, Effect::ImmTrailing { hi: 7 }));
    }

    #[test]
    fn unsupported_slots_end_the_block() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Idiv { rd: Reg::R1, ra: Reg::R2, rb: Reg::R3, unsigned: false },
        ]);
        // paper_default has no divider: the block must stop before idiv.
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 1);
    }

    #[test]
    fn learned_opb_pcs_split_blocks() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::swi(Reg::R0, Reg::R31, 0),
            Insn::addk(Reg::R4, Reg::R5, Reg::R6),
            Insn::ret(),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 3, "an unlearned store is fused optimistically");
        store.learn_opb(4);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 1, "rebuilt block must end before the OPB store");
        assert!(store.block_at(&mut decode, &imem, &features(), 4).is_none());
    }

    #[test]
    fn shared_tables_serve_blocks_and_relearn_without_detaching() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::swi(Reg::R0, Reg::R31, 0),
            Insn::addk(Reg::R4, Reg::R5, Reg::R6),
            Insn::ret(),
        ]);
        // Warm the store the way an image build does: run shape learned,
        // blocks rebuilt to end before the OPB word.
        store.block_at(&mut decode, &imem, &features(), 0);
        store.learn_opb(4);
        assert_eq!(store.block_at(&mut decode, &imem, &features(), 0).unwrap().ops.len(), 1);
        store.block_at(&mut decode, &imem, &features(), 8);
        store.sync(&imem);
        let tables = store.freeze();

        let mut fresh = BlockStore::new(false);
        fresh.attach_shared(Arc::clone(&tables), imem.generation());
        let b = fresh.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 1, "the shared table serves the learned shape");
        assert_eq!(fresh.built, 0, "a warm image needs no lazy builds");

        // Re-learning an already-learned OPB word — every session's exit
        // store does this — must not detach the shared tables.
        fresh.learn_opb(4);
        assert!(matches!(fresh.store, Store::Shared(_)), "re-learning must stay shared");

        // Learning a genuinely new word detaches a private copy and
        // leaves the image (and the sibling still attached) intact.
        fresh.learn_opb(8);
        assert!(matches!(fresh.store, Store::Owned(_)));
        assert!(fresh.block_at(&mut decode, &imem, &features(), 8).is_none());
        let sibling = store.block_at(&mut decode, &imem, &features(), 8).unwrap();
        assert_eq!(sibling.ops.len(), 1, "the frozen image must never change");
    }

    #[test]
    fn patch_invalidates_only_overlapping_blocks() {
        let mut insns = vec![Insn::addk(Reg::R1, Reg::R2, Reg::R3); 8];
        insns.push(Insn::ret()); // terminator so the first block is bounded
        insns.extend(vec![Insn::addk(Reg::R4, Reg::R5, Reg::R6); 4]);
        insns.push(Insn::ret());
        let (mut store, mut decode, mut imem) = store_with(&insns);
        assert_eq!(store.block_at(&mut decode, &imem, &features(), 0).unwrap().ops.len(), 8);
        assert_eq!(store.block_at(&mut decode, &imem, &features(), 36).unwrap().ops.len(), 4);
        let built = store.built;

        // Patch word 2: the block at 0 dies (it contains word 2), the
        // one at word 9 survives.
        imem.write_word(8, encode(&Insn::Xor { rd: Reg::R7, ra: Reg::R1, rb: Reg::R2 })).unwrap();
        assert!(store.block_at(&mut decode, &imem, &features(), 36).is_some());
        assert_eq!(store.built, built, "non-overlapping block must survive the patch");
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(store.built, built + 1, "overlapping block must rebuild");
        assert!(matches!(b.ops[2].effect, Effect::Xor { .. }));
    }

    #[test]
    fn misaligned_pc_yields_no_block() {
        let (mut store, mut decode, imem) = store_with(&[Insn::addk(Reg::R1, Reg::R2, Reg::R3)]);
        assert!(store.block_at(&mut decode, &imem, &features(), 2).is_none());
    }

    fn bnei_back(words: i32) -> Insn {
        Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: (-4 * words) as i16, delay: false }
    }

    #[test]
    fn backward_branch_chains_into_a_loop_guard() {
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::addik(Reg::R3, Reg::R3, -1),
            bnei_back(2),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), 2);
        assert_eq!(b.cycles, 2, "guard cycles stay out of the body cost");
        let g = b.guard.expect("backward bnei must chain");
        assert_eq!(g.target, 0, "loop closes on the block's own head");
        assert_eq!((g.lat_taken, g.lat_not_taken), (2, 1));
        assert!(matches!(g.cond, Some((mb_isa::Cond::Ne, Reg::R3))));
        assert_eq!(b.span_words(), 3, "the guard word belongs to the trace");
    }

    #[test]
    fn guard_only_self_loop_is_dispatchable() {
        // `spin: bri spin` — empty body, guard targeting itself.
        let (mut store, mut decode, imem) = chained_store_with(&[Insn::Bri {
            rd: Reg::R0,
            imm: 0,
            link: false,
            absolute: false,
            delay: false,
        }]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.ops.is_empty());
        let g = b.guard.unwrap();
        assert_eq!(g.target, 0);
        assert!(g.cond.is_none(), "bri is unconditional: the guard always loops");
    }

    #[test]
    fn forward_register_target_and_delay_branches_never_chain() {
        // Forward bci: predicted not-taken, no loop shape.
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: 8, delay: false },
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.guard.is_none(), "forward branch must not chain");

        // Register-target br: dynamic target.
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Br { rd: Reg::R0, rb: Reg::R5, link: false, absolute: false, delay: false },
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.guard.is_none(), "register-target branch must not chain");

        // Delay-slot bci: retirement spans two PCs.
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: -4, delay: true },
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.guard.is_none(), "delay-slot branch must not chain");
    }

    #[test]
    fn trailing_imm_fuses_into_the_guard_target() {
        // imm 0xFFFF ++ bnei -8 resolves to a full 32-bit backward
        // displacement; the prefix is consumed statically so the imm
        // lowers to ImmFused, not ImmTrailing.
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Imm { imm: -1 },
            bnei_back(2),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        let g = b.guard.expect("prefix-resolved backward target must chain");
        assert_eq!(g.target, 0);
        assert!(matches!(b.ops[1].effect, Effect::ImmFused { hi: -1 }));
    }

    #[test]
    fn trailing_imm_stays_architectural_when_the_guard_is_rejected() {
        // The same shape but the prefix makes the target *forward*: no
        // guard, so the imm must escape to the real prefix register.
        let (mut store, mut decode, imem) = chained_store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::Imm { imm: 1 },
            bnei_back(2),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.guard.is_none());
        assert!(matches!(b.ops[1].effect, Effect::ImmTrailing { hi: 1 }));
    }

    #[test]
    fn patch_on_the_guard_word_drops_the_chained_trace() {
        // Maximum-length body (64 ops) + guard at word 64: a patch on
        // the guard word alone must still kill the trace at word 0 —
        // the invalidation back-scan covers body + guard.
        let mut insns = vec![Insn::addk(Reg::R1, Reg::R2, Reg::R3); MAX_BLOCK_OPS];
        insns.push(bnei_back(MAX_BLOCK_OPS as i32));
        let (mut store, mut decode, mut imem) = chained_store_with(&insns);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(b.ops.len(), MAX_BLOCK_OPS);
        assert!(b.guard.is_some());
        let built = store.built;

        let guard_pc = 4 * MAX_BLOCK_OPS as u32;
        imem.write_word(guard_pc, encode(&Insn::ret())).unwrap();
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert_eq!(store.built, built + 1, "guard-word patch must rebuild the trace");
        assert!(b.guard.is_none(), "rtsd (delay slot) must not chain");
    }

    #[test]
    fn unchained_store_never_builds_guards() {
        let (mut store, mut decode, imem) = store_with(&[
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::addik(Reg::R3, Reg::R3, -1),
            bnei_back(2),
        ]);
        let b = store.block_at(&mut decode, &imem, &features(), 0).unwrap();
        assert!(b.guard.is_none());
        assert!(store.block_at(&mut decode, &imem, &features(), 8).is_none());
    }
}
