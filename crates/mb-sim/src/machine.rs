//! The complete simulated system: CPU + memories + buses + peripherals.

use std::error::Error;
use std::fmt;

use mb_isa::{decode, DecodeError, Insn, MemSize, Program};

use crate::block::{Block, BlockOp, BlockStore, Effect, Guard};
use crate::cache::Cache;
use crate::image::ProgramImage;
use crate::periph::{OpbBus, Peripheral, EXIT_PORT_BASE, OPB_BASE};
use crate::predecode::{DecodeCache, Predecoded};
use crate::sink::{BlockRetire, NullSink, TraceSink, TraceSummary};
use crate::trace::{Trace, TraceEvent};
use crate::{Bram, Cpu, ExecStats, ExitPort, MbConfig, MemError};

/// Why a [`System::run`] call stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program wrote the exit port with this code.
    Exited(u32),
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// Result of running the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Total instructions retired.
    pub instructions: u64,
}

impl Outcome {
    /// Whether the program exited via the exit port.
    #[must_use]
    pub fn exited(&self) -> bool {
        matches!(self.stop, StopReason::Exited(_))
    }

    /// The exit code, if the program exited.
    #[must_use]
    pub fn exit_code(&self) -> Option<u32> {
        match self.stop {
            StopReason::Exited(c) => Some(c),
            StopReason::CycleLimit => None,
        }
    }
}

/// Execution error: the simulated program did something illegal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// A memory access failed.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying memory error.
        err: MemError,
    },
    /// Instruction fetch returned an undecodable word.
    Decode {
        /// PC of the faulting fetch.
        pc: u32,
        /// Underlying decode error.
        err: DecodeError,
    },
    /// The instruction needs a functional unit this configuration lacks.
    UnsupportedInsn {
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// A data access hit an address with no memory or peripheral.
    UnmappedAddress {
        /// PC of the faulting instruction.
        pc: u32,
        /// The unmapped data address.
        addr: u32,
    },
    /// A control-flow instruction appeared in a delay slot.
    BranchInDelaySlot {
        /// PC of the offending delay-slot instruction.
        pc: u32,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
            RunError::Decode { pc, err } => write!(f, "fetch fault at pc {pc:#010x}: {err}"),
            RunError::UnsupportedInsn { pc } => {
                write!(f, "instruction at pc {pc:#010x} needs a unit this core lacks")
            }
            RunError::UnmappedAddress { pc, addr } => {
                write!(f, "unmapped address {addr:#010x} at pc {pc:#010x}")
            }
            RunError::BranchInDelaySlot { pc } => {
                write!(f, "control-flow instruction in delay slot at pc {pc:#010x}")
            }
        }
    }
}

impl Error for RunError {}

/// The execution engine a [`System`] actually dispatches through —
/// derived from the configuration, never silently downgraded. Benchmark
/// harnesses and equality tests assert this instead of assuming the
/// configuration they requested is the engine they got.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Decode-per-fetch reference loop (`predecode` off): the seed
    /// behavior, re-decoding every fetched word.
    Reference,
    /// Per-instruction stepping over the pre-decoded store (`blocks`
    /// off).
    Step,
    /// Superblock retirement: straight-line blocks ending at control
    /// flow (`traces` off).
    Block,
    /// Megablock loop traces: superblocks chained across predicted-taken
    /// backward branches with guarded side exits (the default).
    Trace,
}

impl Engine {
    /// Stable identifier used in `BENCH_sim.json` and CI gates.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Reference => "reference_decode_per_fetch",
            Engine::Step => "predecoded_step",
            Engine::Block => "block",
            Engine::Trace => "trace",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// MicroBlaze divide semantics, shared verbatim by the step engine's
/// [`System::execute`], the block engine's `exec_effect`, and the lane
/// engine's vectorized effect walk so the three can never drift:
/// `rd = dividend ÷ divisor`, divide-by-zero yields 0, and signed
/// overflow (`i32::MIN / -1`) wraps.
#[inline]
pub(crate) fn divide(divisor: u32, dividend: u32, unsigned: bool) -> u32 {
    if divisor == 0 {
        0
    } else if unsigned {
        dividend / divisor
    } else {
        ((dividend as i32).wrapping_div(divisor as i32)) as u32
    }
}

/// MicroBlaze `cmp`/`cmpu` result, shared by every engine: the
/// subtraction's low 31 bits with the sign bit replaced by the
/// (signedness-aware) `rb < ra` outcome.
#[inline]
pub(crate) fn compare(a: u32, b: u32, unsigned: bool) -> u32 {
    let diff = b.wrapping_sub(a);
    let lt = if unsigned { b < a } else { (b as i32) < (a as i32) };
    (diff & 0x7FFF_FFFF) | (u32::from(lt) << 31)
}

/// Control-flow outcome of one instruction.
pub(crate) enum Next {
    Seq,
    Jump(u32),
    JumpAfterDelay(u32),
}

pub(crate) struct Exec {
    pub(crate) next: Next,
    pub(crate) cycles: u32,
    pub(crate) taken: Option<bool>,
    pub(crate) target: Option<u32>,
    pub(crate) ea: Option<u32>,
}

/// One architectural execution context — a register file, carry flag,
/// `imm`-prefix latch, and a data port — viewed through accessors so the
/// scalar interpreter in [`exec_insn`] is the *single* implementation of
/// MicroBlaze semantics for both the [`System`] (its CPU + dmem + OPB +
/// dcache) and each lane of a [`crate::LaneGroup`] (one column of the
/// structure-of-arrays planes + that lane's private dmem/OPB).
///
/// The default-implemented helpers (`add_with_carry`, the single-bit
/// shifts) sit here for the same reason `divide`/`compare` are free
/// functions: one implementation that no engine can drift from.
pub(crate) trait ExecLane {
    fn reg(&self, r: mb_isa::Reg) -> u32;
    fn set_reg(&mut self, r: mb_isa::Reg, v: u32);
    fn carry(&self) -> bool;
    fn set_carry(&mut self, c: bool);
    fn set_imm_prefix(&mut self, hi: i16);
    fn take_imm(&mut self, imm: i16) -> u32;
    fn clear_imm_prefix(&mut self);
    /// Loads through this context's data port (dmem or OPB), returning
    /// `(value, wait_cycles)`.
    fn lane_load(&mut self, pc: u32, addr: u32, size: MemSize) -> Result<(u32, u32), RunError>;
    /// Stores through this context's data port, returning wait cycles.
    fn lane_store(
        &mut self,
        pc: u32,
        addr: u32,
        value: u32,
        size: MemSize,
    ) -> Result<u32, RunError>;

    fn add_with_carry(&mut self, a: u32, b: u32, cin: u32, keep: bool) -> u32 {
        let wide = u64::from(a) + u64::from(b) + u64::from(cin);
        if !keep {
            self.set_carry(wide >> 32 != 0);
        }
        wide as u32
    }

    // Single-bit shifts write both `rd` and the carry flag; the helpers
    // keep every engine on one implementation.
    #[inline]
    fn shift_sra(&mut self, rd: mb_isa::Reg, ra: mb_isa::Reg) {
        let a = self.reg(ra);
        self.set_carry(a & 1 != 0);
        self.set_reg(rd, ((a as i32) >> 1) as u32);
    }

    #[inline]
    fn shift_src(&mut self, rd: mb_isa::Reg, ra: mb_isa::Reg, carry_in: u32) {
        let a = self.reg(ra);
        let v = (carry_in << 31) | (a >> 1);
        self.set_carry(a & 1 != 0);
        self.set_reg(rd, v);
    }

    #[inline]
    fn shift_srl(&mut self, rd: mb_isa::Reg, ra: mb_isa::Reg) {
        let a = self.reg(ra);
        self.set_carry(a & 1 != 0);
        self.set_reg(rd, a >> 1);
    }
}

/// Executes one prepared instruction against any [`ExecLane`] context
/// (no delay-slot handling). This is the interpreter the step engine
/// monomorphizes over [`System`] and the lane engine monomorphizes over
/// a lane view — byte-for-byte the same semantics.
#[inline]
pub(crate) fn exec_insn<L: ExecLane>(
    lane: &mut L,
    pc: u32,
    d: &Predecoded,
) -> Result<Exec, RunError> {
    if !d.supported {
        return Err(RunError::UnsupportedInsn { pc });
    }
    let cpu_carry = u32::from(lane.carry());
    let mut cycles = d.lat_not_taken;
    let mut next = Next::Seq;
    let mut taken = None;
    let mut target = None;
    let mut ea = None;

    match d.insn {
        Insn::Add { rd, ra, rb, keep_carry, use_carry } => {
            let cin = if use_carry { cpu_carry } else { 0 };
            let v = lane.add_with_carry(lane.reg(ra), lane.reg(rb), cin, keep_carry);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Rsub { rd, ra, rb, keep_carry, use_carry } => {
            let cin = if use_carry { cpu_carry } else { 1 };
            let v = lane.add_with_carry(!lane.reg(ra), lane.reg(rb), cin, keep_carry);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Addi { rd, ra, imm, keep_carry, use_carry } => {
            let imm32 = lane.take_imm(imm);
            let cin = if use_carry { cpu_carry } else { 0 };
            let v = lane.add_with_carry(lane.reg(ra), imm32, cin, keep_carry);
            lane.set_reg(rd, v);
        }
        Insn::Rsubi { rd, ra, imm, keep_carry, use_carry } => {
            let imm32 = lane.take_imm(imm);
            let cin = if use_carry { cpu_carry } else { 1 };
            let v = lane.add_with_carry(!lane.reg(ra), imm32, cin, keep_carry);
            lane.set_reg(rd, v);
        }
        Insn::Cmp { rd, ra, rb, unsigned } => {
            let v = compare(lane.reg(ra), lane.reg(rb), unsigned);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Mul { rd, ra, rb } => {
            let v = lane.reg(ra).wrapping_mul(lane.reg(rb));
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Muli { rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let v = lane.reg(ra).wrapping_mul(imm32);
            lane.set_reg(rd, v);
        }
        Insn::Idiv { rd, ra, rb, unsigned } => {
            // MicroBlaze: rd = rb ÷ ra.
            let v = divide(lane.reg(ra), lane.reg(rb), unsigned);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Bs { rd, ra, rb, kind } => {
            let v = kind.apply(lane.reg(ra), lane.reg(rb));
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Bsi { rd, ra, amount, kind } => {
            let v = kind.apply(lane.reg(ra), u32::from(amount));
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Or { rd, ra, rb } => {
            let v = lane.reg(ra) | lane.reg(rb);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::And { rd, ra, rb } => {
            let v = lane.reg(ra) & lane.reg(rb);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Xor { rd, ra, rb } => {
            let v = lane.reg(ra) ^ lane.reg(rb);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Andn { rd, ra, rb } => {
            let v = lane.reg(ra) & !lane.reg(rb);
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Ori { rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let v = lane.reg(ra) | imm32;
            lane.set_reg(rd, v);
        }
        Insn::Andi { rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let v = lane.reg(ra) & imm32;
            lane.set_reg(rd, v);
        }
        Insn::Xori { rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let v = lane.reg(ra) ^ imm32;
            lane.set_reg(rd, v);
        }
        Insn::Andni { rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let v = lane.reg(ra) & !imm32;
            lane.set_reg(rd, v);
        }
        Insn::Sra { rd, ra } => {
            lane.shift_sra(rd, ra);
            lane.clear_imm_prefix();
        }
        Insn::Src { rd, ra } => {
            lane.shift_src(rd, ra, cpu_carry);
            lane.clear_imm_prefix();
        }
        Insn::Srl { rd, ra } => {
            lane.shift_srl(rd, ra);
            lane.clear_imm_prefix();
        }
        Insn::Sext8 { rd, ra } => {
            let v = lane.reg(ra) as u8 as i8 as i32 as u32;
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Sext16 { rd, ra } => {
            let v = lane.reg(ra) as u16 as i16 as i32 as u32;
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
        }
        Insn::Br { rd, rb, link, absolute, delay } => {
            let t = if absolute { lane.reg(rb) } else { pc.wrapping_add(lane.reg(rb)) };
            if link {
                lane.set_reg(rd, pc);
            }
            lane.clear_imm_prefix();
            cycles = d.lat_taken;
            taken = Some(true);
            target = Some(t);
            next = if delay { Next::JumpAfterDelay(t) } else { Next::Jump(t) };
        }
        Insn::Bri { rd, imm, link, absolute, delay } => {
            let imm32 = lane.take_imm(imm);
            let t = if absolute { imm32 } else { pc.wrapping_add(imm32) };
            if link {
                lane.set_reg(rd, pc);
            }
            cycles = d.lat_taken;
            taken = Some(true);
            target = Some(t);
            next = if delay { Next::JumpAfterDelay(t) } else { Next::Jump(t) };
        }
        Insn::Bc { cond, ra, rb, delay } => {
            let t = pc.wrapping_add(lane.reg(rb));
            let is_taken = cond.eval(lane.reg(ra));
            lane.clear_imm_prefix();
            cycles = if is_taken { d.lat_taken } else { d.lat_not_taken };
            taken = Some(is_taken);
            if is_taken {
                target = Some(t);
                next = if delay { Next::JumpAfterDelay(t) } else { Next::Jump(t) };
            }
        }
        Insn::Bci { cond, ra, imm, delay } => {
            let imm32 = lane.take_imm(imm);
            let t = pc.wrapping_add(imm32);
            let is_taken = cond.eval(lane.reg(ra));
            cycles = if is_taken { d.lat_taken } else { d.lat_not_taken };
            taken = Some(is_taken);
            if is_taken {
                target = Some(t);
                next = if delay { Next::JumpAfterDelay(t) } else { Next::Jump(t) };
            }
        }
        Insn::Rtsd { ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let t = lane.reg(ra).wrapping_add(imm32);
            cycles = d.lat_taken;
            taken = Some(true);
            target = Some(t);
            next = Next::JumpAfterDelay(t);
        }
        Insn::Load { size, rd, ra, rb } => {
            let addr = lane.reg(ra).wrapping_add(lane.reg(rb));
            let (v, wait) = lane.lane_load(pc, addr, size)?;
            lane.set_reg(rd, v);
            lane.clear_imm_prefix();
            cycles += wait;
            ea = Some(addr);
        }
        Insn::Loadi { size, rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let addr = lane.reg(ra).wrapping_add(imm32);
            let (v, wait) = lane.lane_load(pc, addr, size)?;
            lane.set_reg(rd, v);
            cycles += wait;
            ea = Some(addr);
        }
        Insn::Store { size, rd, ra, rb } => {
            let addr = lane.reg(ra).wrapping_add(lane.reg(rb));
            let wait = lane.lane_store(pc, addr, lane.reg(rd), size)?;
            lane.clear_imm_prefix();
            cycles += wait;
            ea = Some(addr);
        }
        Insn::Storei { size, rd, ra, imm } => {
            let imm32 = lane.take_imm(imm);
            let addr = lane.reg(ra).wrapping_add(imm32);
            let wait = lane.lane_store(pc, addr, lane.reg(rd), size)?;
            cycles += wait;
            ea = Some(addr);
        }
        Insn::Imm { imm } => {
            lane.set_imm_prefix(imm);
        }
    }

    Ok(Exec { next, cycles, taken, target, ea })
}

/// A complete MicroBlaze system (Figure 1 of the paper): CPU, separate
/// instruction and data BRAMs on local memory buses, and an OPB
/// peripheral bus with at least the exit port mapped.
pub struct System {
    config: MbConfig,
    cpu: Cpu,
    imem: Bram,
    dmem: Bram,
    opb: OpbBus,
    icache: Option<Cache>,
    dcache: Option<Cache>,
    stats: ExecStats,
    halted: Option<u32>,
    /// Pre-decoded instruction store (see [`MbConfig::predecode`]).
    decode: DecodeCache,
    /// Fused superblock store (see [`MbConfig::blocks`]).
    blocks: BlockStore,
    /// Reusable per-block event buffer (filled only for sinks whose
    /// [`TraceSink::WANTS_EVENTS`] is true).
    block_events: Vec<TraceEvent>,
    /// Reusable `(op index, effective address)` scratch so a partially
    /// retired block can reconstruct exact events for batched sinks.
    block_eas: Vec<(u32, u32)>,
}

impl System {
    /// Creates a system per the configuration, with the exit port mapped
    /// at [`EXIT_PORT_BASE`].
    #[must_use]
    pub fn new(config: MbConfig) -> Self {
        let mut opb = OpbBus::default();
        opb.map(EXIT_PORT_BASE, 16, Box::new(ExitPort::new()));
        System {
            cpu: Cpu::new(),
            // The instruction BRAM tracks written ranges so predecode
            // and block invalidation after a patch stay incremental.
            imem: Bram::new(config.imem_bytes).with_write_log(),
            dmem: Bram::new(config.dmem_bytes),
            opb,
            icache: config.icache.map(Cache::new),
            dcache: config.dcache.map(Cache::new),
            stats: ExecStats::new(),
            halted: None,
            decode: DecodeCache::new(),
            blocks: BlockStore::new(config.traces),
            block_events: Vec::new(),
            block_eas: Vec::new(),
            config,
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &MbConfig {
        &self.config
    }

    /// The execution engine this configuration actually dispatches
    /// through. This is a pure function of [`MbConfig`] — there is no
    /// hidden downgrade path: with caches configured, block and trace
    /// dispatch switch to per-op accounting (cache waits become per-op
    /// guard checks) instead of silently falling back to stepping.
    #[must_use]
    pub fn active_engine(&self) -> Engine {
        if !self.config.predecode {
            Engine::Reference
        } else if !self.config.blocks {
            Engine::Step
        } else if !self.config.traces {
            Engine::Block
        } else {
            Engine::Trace
        }
    }

    /// Loads a program into instruction memory and points the PC at its
    /// base address.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Mem`] if the program does not fit.
    pub fn load_program(&mut self, program: &Program) -> Result<(), RunError> {
        self.imem
            .load_words(program.base, &program.words)
            .map_err(|err| RunError::Mem { pc: program.base, err })?;
        self.cpu.set_pc(program.base);
        Ok(())
    }

    /// Loads words into data memory.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Mem`] if the region does not fit.
    pub fn load_data(&mut self, addr: u32, words: &[u32]) -> Result<(), RunError> {
        self.dmem.load_words(addr, words).map_err(|err| RunError::Mem { pc: 0, err })
    }

    /// Maps a peripheral into the OPB window.
    pub fn map_peripheral(&mut self, base: u32, size: u32, dev: Box<dyn Peripheral>) {
        self.opb.map(base, size, dev);
    }

    /// The CPU state.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU state (for test setup).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The data BRAM.
    #[must_use]
    pub fn dmem(&self) -> &Bram {
        &self.dmem
    }

    /// Mutable data BRAM.
    pub fn dmem_mut(&mut self) -> &mut Bram {
        &mut self.dmem
    }

    /// The instruction BRAM (the DPM reads and patches it through the
    /// dual-ported interface).
    #[must_use]
    pub fn imem(&self) -> &Bram {
        &self.imem
    }

    /// Mutable instruction BRAM — this is the interface the dynamic
    /// partitioning module uses to patch the running binary.
    pub fn imem_mut(&mut self) -> &mut Bram {
        &mut self.imem
    }

    /// Accumulated execution statistics.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Whether the program has written the exit port.
    #[must_use]
    pub fn halted(&self) -> Option<u32> {
        self.halted
    }

    #[inline]
    fn fetch(&mut self, pc: u32) -> Result<(Predecoded, u32), RunError> {
        let prepared = if self.config.predecode {
            self.decode.fetch(&self.imem, &self.config.features, pc)?
        } else {
            // Decode-per-fetch reference path (the seed behavior), kept
            // for the fast-path equivalence tests and `simperf` baseline:
            // every fetch re-reads the word, re-decodes it, and
            // re-derives the per-instruction properties.
            let word = self.imem.read_word(pc).map_err(|err| RunError::Mem { pc, err })?;
            let insn = decode(word).map_err(|err| RunError::Decode { pc, err })?;
            Predecoded::prepare(insn, &self.config.features)
        };
        let wait = self.icache.as_mut().map_or(0, |c| c.access(pc));
        Ok((prepared, wait))
    }

    fn data_load(&mut self, pc: u32, addr: u32, size: MemSize) -> Result<(u32, u32), RunError> {
        if addr >= OPB_BASE {
            let Some((m, off)) = self.opb.find(addr) else {
                return Err(RunError::UnmappedAddress { pc, addr });
            };
            let r = m.dev.read(off, &mut self.dmem);
            Ok((r.value, r.wait))
        } else {
            let value = self.dmem.read(addr, size).map_err(|err| RunError::Mem { pc, err })?;
            let wait = self.dcache.as_mut().map_or(0, |c| c.access(addr));
            Ok((value, wait))
        }
    }

    fn data_store(
        &mut self,
        pc: u32,
        addr: u32,
        value: u32,
        size: MemSize,
    ) -> Result<u32, RunError> {
        if addr >= OPB_BASE {
            let Some((m, off)) = self.opb.find(addr) else {
                return Err(RunError::UnmappedAddress { pc, addr });
            };
            Ok(m.dev.write(off, value, &mut self.dmem))
        } else {
            self.dmem.write(addr, value, size).map_err(|err| RunError::Mem { pc, err })?;
            Ok(self.dcache.as_mut().map_or(0, |c| c.access(addr)))
        }
    }
}

impl ExecLane for System {
    #[inline]
    fn reg(&self, r: mb_isa::Reg) -> u32 {
        self.cpu.reg(r)
    }

    #[inline]
    fn set_reg(&mut self, r: mb_isa::Reg, v: u32) {
        self.cpu.set_reg(r, v);
    }

    #[inline]
    fn carry(&self) -> bool {
        self.cpu.carry()
    }

    #[inline]
    fn set_carry(&mut self, c: bool) {
        self.cpu.set_carry(c);
    }

    #[inline]
    fn set_imm_prefix(&mut self, hi: i16) {
        self.cpu.set_imm_prefix(hi);
    }

    #[inline]
    fn take_imm(&mut self, imm: i16) -> u32 {
        self.cpu.take_imm(imm)
    }

    #[inline]
    fn clear_imm_prefix(&mut self) {
        self.cpu.clear_imm_prefix();
    }

    #[inline]
    fn lane_load(&mut self, pc: u32, addr: u32, size: MemSize) -> Result<(u32, u32), RunError> {
        self.data_load(pc, addr, size)
    }

    #[inline]
    fn lane_store(
        &mut self,
        pc: u32,
        addr: u32,
        value: u32,
        size: MemSize,
    ) -> Result<u32, RunError> {
        self.data_store(pc, addr, value, size)
    }
}

impl System {
    /// Executes one prepared instruction (no delay-slot handling) —
    /// the [`exec_insn`] interpreter monomorphized over this system's
    /// own CPU, dmem, dcache, and OPB.
    #[inline]
    fn execute(&mut self, pc: u32, d: &Predecoded) -> Result<Exec, RunError> {
        exec_insn(self, pc, d)
    }

    /// Fetches the predecoded instruction at `pc` for a lane engine
    /// sharing this system's decode store. Lane groups reject cache
    /// configurations, so the icache wait the scalar path would add is
    /// structurally zero here.
    #[inline]
    pub(crate) fn fetch_shared(&mut self, pc: u32) -> Result<Predecoded, RunError> {
        debug_assert!(self.icache.is_none(), "lane fetch bypasses icache accounting");
        self.fetch(pc).map(|(d, _)| d)
    }

    /// Records that `pc` turned out to touch the OPB window so rebuilt
    /// blocks split before it — the lane engine's access to the same
    /// learning the block engine does at its OPB early-out.
    #[inline]
    pub(crate) fn learn_opb(&mut self, pc: u32) {
        self.blocks.learn_opb(pc);
    }

    #[inline]
    fn record<S: TraceSink>(&mut self, pc: u32, d: &Predecoded, exec: &Exec, sink: &mut S) {
        self.stats.record(d.class, exec.cycles);
        if let Some(t) = exec.taken {
            if t {
                self.stats.branches_taken += 1;
                if exec.target.is_some_and(|tt| tt <= pc) {
                    self.stats.backward_taken += 1;
                }
            } else {
                self.stats.branches_not_taken += 1;
            }
        }
        sink.record(&TraceEvent {
            pc,
            insn: d.insn,
            cycles: exec.cycles,
            taken: exec.taken,
            target: if exec.taken == Some(true) { exec.target } else { None },
            ea: exec.ea,
        });
    }

    /// Executes one instruction (plus its delay slot if the branch is
    /// taken), feeding each retirement to `sink` and returning the
    /// cycles consumed.
    ///
    /// The sink is a compile-time policy: [`NullSink`] makes this an
    /// untraced step with zero tracing cost, [`Trace`] records the full
    /// event stream, [`TraceSummary`] streams aggregates.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on illegal execution (bad memory access,
    /// undecodable instruction, missing functional unit, or a branch in a
    /// delay slot).
    pub fn step<S: TraceSink>(&mut self, sink: &mut S) -> Result<u32, RunError> {
        let pc = self.cpu.pc();
        let (d, fetch_wait) = self.fetch(pc)?;
        let mut exec = self.execute(pc, &d)?;
        exec.cycles += fetch_wait;
        self.record(pc, &d, &exec, sink);
        let mut total = exec.cycles;
        // Peripherals only change state when accessed, so the exit port
        // needs polling only after a step that touched the OPB window.
        let mut touched_opb = exec.ea.is_some_and(|a| a >= OPB_BASE);

        match exec.next {
            Next::Seq => self.cpu.set_pc(pc.wrapping_add(4)),
            Next::Jump(t) => self.cpu.set_pc(t),
            Next::JumpAfterDelay(t) => {
                let dpc = pc.wrapping_add(4);
                let (dd, dwait) = self.fetch(dpc)?;
                if dd.control_flow {
                    return Err(RunError::BranchInDelaySlot { pc: dpc });
                }
                let mut dexec = self.execute(dpc, &dd)?;
                dexec.cycles += dwait;
                self.record(dpc, &dd, &dexec, sink);
                total += dexec.cycles;
                touched_opb |= dexec.ea.is_some_and(|a| a >= OPB_BASE);
                self.cpu.set_pc(t);
            }
        }

        // The reference loop keeps the seed's per-instruction poll.
        if (touched_opb || !self.config.predecode) && self.halted.is_none() {
            self.halted = self.opb.exit_request();
        }
        Ok(total)
    }

    /// Whether this configuration dispatches fused superblocks: the
    /// block engine rides on the predecoded store, so predecode must be
    /// on. Caches no longer disable it — with caches configured the
    /// dispatch loop switches to op-at-a-time *careful* retirement
    /// ([`System::exec_block_careful`]), which charges state-dependent
    /// waits per op instead of silently downgrading to stepping.
    pub(crate) fn blocks_enabled(&self) -> bool {
        self.config.blocks && self.config.predecode
    }

    /// Looks up (building lazily) the fused block entered at `pc`.
    pub(crate) fn block_at(&mut self, pc: u32) -> Option<std::sync::Arc<Block>> {
        let System { blocks, decode, imem, config, .. } = self;
        blocks.block_at(decode, imem, &config.features, pc)
    }

    /// Executes one lowered block op at `pc`, returning its actual
    /// cycles and effective address. Mirrors [`System::execute`] exactly
    /// — with `imm`-prefix traffic already resolved statically by the
    /// block lowerer, so no prefix state is touched mid-block.
    ///
    /// Dispatch is two-tiered so the block engines inline the common
    /// case: [`exec_alu`](System::exec_alu) covers every effect that
    /// cannot fault and produces no effective address — those return by
    /// register at their static `op.cycles` cost, with no `Result` on
    /// the path at all — while the four memory-access effects take the
    /// out-of-line fallible path in [`exec_mem`](System::exec_mem).
    #[inline]
    fn exec_effect(&mut self, pc: u32, op: &BlockOp) -> Result<(u32, Option<u32>), RunError> {
        if self.exec_alu(op) {
            return Ok((op.cycles, None));
        }
        self.exec_mem(pc, op)
    }

    /// Executes `op` if it is one of the infallible register-to-register
    /// effects (no fault, no effective address, static cost), returning
    /// whether it was handled. Memory accesses return `false` and must
    /// go through [`exec_mem`](System::exec_mem). Carry is read inside
    /// the arms that consume it, so carry-free ops touch no flag state.
    #[inline]
    fn exec_alu(&mut self, op: &BlockOp) -> bool {
        match op.effect {
            Effect::Add { rd, ra, rb, keep, use_c } => {
                let cin = if use_c { u32::from(self.cpu.carry()) } else { 0 };
                let v = self.add_with_carry(self.cpu.reg(ra), self.cpu.reg(rb), cin, keep);
                self.cpu.set_reg(rd, v);
            }
            Effect::AddImm { rd, ra, imm, keep, use_c } => {
                let cin = if use_c { u32::from(self.cpu.carry()) } else { 0 };
                let v = self.add_with_carry(self.cpu.reg(ra), imm, cin, keep);
                self.cpu.set_reg(rd, v);
            }
            Effect::Rsub { rd, ra, rb, keep, use_c } => {
                let cin = if use_c { u32::from(self.cpu.carry()) } else { 1 };
                let v = self.add_with_carry(!self.cpu.reg(ra), self.cpu.reg(rb), cin, keep);
                self.cpu.set_reg(rd, v);
            }
            Effect::RsubImm { rd, ra, imm, keep, use_c } => {
                let cin = if use_c { u32::from(self.cpu.carry()) } else { 1 };
                let v = self.add_with_carry(!self.cpu.reg(ra), imm, cin, keep);
                self.cpu.set_reg(rd, v);
            }
            Effect::Cmp { rd, ra, rb, unsigned } => {
                let v = compare(self.cpu.reg(ra), self.cpu.reg(rb), unsigned);
                self.cpu.set_reg(rd, v);
            }
            Effect::Mul { rd, ra, rb } => {
                let v = self.cpu.reg(ra).wrapping_mul(self.cpu.reg(rb));
                self.cpu.set_reg(rd, v);
            }
            Effect::MulImm { rd, ra, imm } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra).wrapping_mul(imm));
            }
            Effect::Idiv { rd, ra, rb, unsigned } => {
                let v = divide(self.cpu.reg(ra), self.cpu.reg(rb), unsigned);
                self.cpu.set_reg(rd, v);
            }
            Effect::Bs { rd, ra, rb, kind } => {
                let v = kind.apply(self.cpu.reg(ra), self.cpu.reg(rb));
                self.cpu.set_reg(rd, v);
            }
            Effect::BsImm { rd, ra, amount, kind } => {
                self.cpu.set_reg(rd, kind.apply(self.cpu.reg(ra), amount));
            }
            Effect::Or { rd, ra, rb } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) | self.cpu.reg(rb));
            }
            Effect::And { rd, ra, rb } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) & self.cpu.reg(rb));
            }
            Effect::Xor { rd, ra, rb } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) ^ self.cpu.reg(rb));
            }
            Effect::Andn { rd, ra, rb } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) & !self.cpu.reg(rb));
            }
            Effect::OrImm { rd, ra, imm } => self.cpu.set_reg(rd, self.cpu.reg(ra) | imm),
            Effect::AndImm { rd, ra, imm } => self.cpu.set_reg(rd, self.cpu.reg(ra) & imm),
            Effect::XorImm { rd, ra, imm } => self.cpu.set_reg(rd, self.cpu.reg(ra) ^ imm),
            Effect::AndnImm { rd, ra, imm } => self.cpu.set_reg(rd, self.cpu.reg(ra) & !imm),
            Effect::Sra { rd, ra } => self.shift_sra(rd, ra),
            Effect::Src { rd, ra } => {
                let carry = u32::from(self.cpu.carry());
                self.shift_src(rd, ra, carry);
            }
            Effect::Srl { rd, ra } => self.shift_srl(rd, ra),
            Effect::Sext8 { rd, ra } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) as u8 as i8 as i32 as u32);
            }
            Effect::Sext16 { rd, ra } => {
                self.cpu.set_reg(rd, self.cpu.reg(ra) as u16 as i16 as i32 as u32);
            }
            Effect::ImmFused { .. } => {}
            Effect::ImmTrailing { hi } => self.cpu.set_imm_prefix(hi),
            Effect::Load { .. }
            | Effect::LoadImm { .. }
            | Effect::Store { .. }
            | Effect::StoreImm { .. } => return false,
        }
        true
    }

    /// Executes a memory-access block op — the fallible,
    /// effective-address-producing complement of
    /// [`exec_alu`](System::exec_alu).
    fn exec_mem(&mut self, pc: u32, op: &BlockOp) -> Result<(u32, Option<u32>), RunError> {
        let mut cycles = op.cycles;
        let ea = match op.effect {
            Effect::Load { size, rd, ra, rb } => {
                let addr = self.cpu.reg(ra).wrapping_add(self.cpu.reg(rb));
                let (v, wait) = self.data_load(pc, addr, size)?;
                self.cpu.set_reg(rd, v);
                cycles += wait;
                addr
            }
            Effect::LoadImm { size, rd, ra, imm } => {
                let addr = self.cpu.reg(ra).wrapping_add(imm);
                let (v, wait) = self.data_load(pc, addr, size)?;
                self.cpu.set_reg(rd, v);
                cycles += wait;
                addr
            }
            Effect::Store { size, rd, ra, rb } => {
                let addr = self.cpu.reg(ra).wrapping_add(self.cpu.reg(rb));
                cycles += self.data_store(pc, addr, self.cpu.reg(rd), size)?;
                addr
            }
            Effect::StoreImm { size, rd, ra, imm } => {
                let addr = self.cpu.reg(ra).wrapping_add(imm);
                cycles += self.data_store(pc, addr, self.cpu.reg(rd), size)?;
                addr
            }
            _ => unreachable!("exec_alu handles every non-memory effect"),
        };
        Ok((cycles, Some(ea)))
    }

    /// Retires the first `retired` instructions of a block individually
    /// — statistics via [`ExecStats::record`] and events via
    /// [`TraceSink::record`] — exactly as the step engine would have.
    /// Used when a block stops early (a fault, or an instruction that
    /// turned out to touch the OPB). `last_cycles` overrides the final
    /// retired op's static cost when it paid bus waits.
    fn flush_partial_block<S: TraceSink>(
        &mut self,
        block: &Block,
        retired: usize,
        last_cycles: Option<u32>,
        events: &[TraceEvent],
        eas: &[(u32, u32)],
        sink: &mut S,
    ) {
        let mut ea_iter = eas.iter().peekable();
        for (i, op) in block.ops[..retired].iter().enumerate() {
            let cycles =
                if i + 1 == retired { last_cycles.unwrap_or(op.cycles) } else { op.cycles };
            self.stats.record(op.class, cycles);
            if S::WANTS_EVENTS {
                sink.record(&events[i]);
            } else {
                let ea = ea_iter.next_if(|(j, _)| *j as usize == i).map(|&(_, a)| a);
                sink.record(&TraceEvent {
                    pc: block.head + 4 * i as u32,
                    insn: op.insn,
                    cycles,
                    taken: None,
                    target: None,
                    ea,
                });
            }
        }
    }

    /// Retires a chained guard branch exactly as the step engine would
    /// have: evaluate the condition, write the link register, charge the
    /// taken/not-taken latency plus `fetch_wait`, emit the trace event,
    /// and move the PC to the target or the fall-through.
    ///
    /// Statistics are the caller's job: the trace loop batches guard
    /// retirements into one [`ExecStats::record_guards`] update per
    /// dispatch, while the careful path records each one as it goes.
    ///
    /// Returns `(taken, cycles)`.
    #[inline]
    fn retire_guard<S: TraceSink>(
        &mut self,
        g: &Guard,
        pc: u32,
        fetch_wait: u32,
        sink: &mut S,
    ) -> (bool, u32) {
        let taken = g.cond.is_none_or(|(cond, ra)| cond.eval(self.cpu.reg(ra)));
        if let Some(rd) = g.link {
            self.cpu.set_reg(rd, pc);
        }
        let cycles = if taken { g.lat_taken } else { g.lat_not_taken } + fetch_wait;
        sink.record(&TraceEvent {
            pc,
            insn: g.insn,
            cycles,
            taken: Some(taken),
            target: taken.then_some(g.target),
            ea: None,
        });
        self.cpu.set_pc(if taken { g.target } else { pc.wrapping_add(4) });
        (taken, cycles)
    }

    /// Retires one fused block — iterating it in place when it carries a
    /// loop guard — returning the cycles consumed.
    ///
    /// The fast path retires each whole body: one statistics update from
    /// the precomputed class deltas and one [`TraceSink::retire_block`]
    /// call per iteration. A chained guard then retires through
    /// [`System::retire_guard`], and when it loops back to the block's
    /// own head the next iteration runs without returning to the
    /// dispatch loop — the megablock trace tier. Guard failure (a side
    /// exit) leaves the machine at the exact architectural boundary the
    /// step engine would have reached: the retired prefix is already
    /// recorded and the PC sits on the fall-through or the off-trace
    /// target.
    ///
    /// Budget contract (bit-identical slice boundaries): the caller
    /// guarantees the first body fits `budget`. The guard executes only
    /// while `total < budget` — the step engine stops only once spent
    /// cycles reach the budget, overshooting mid-instruction otherwise —
    /// and the loop re-enters only when the next body also fully fits,
    /// so any boundary the step engine would have stopped at inside the
    /// trace is instead handed back to the dispatch loop's stepping
    /// tail. Two events stop a body early at an exact instruction
    /// boundary:
    ///
    /// * an op whose effective address lands in the OPB window — it
    ///   retires (peripherals execute correctly either way), the exit
    ///   port is polled exactly as after an OPB-touching step, the PC is
    ///   learned so rebuilt blocks end before it, and control returns to
    ///   the dispatch loop;
    /// * a fault — the instructions before it are flushed per-insn (the
    ///   step engine would have recorded them) and the error propagates
    ///   with the PC on the faulting instruction. If the faulting op is
    ///   a register-indexed (Type-A) load/store directly preceded by a
    ///   fused `imm`, the architectural prefix is restored first: the
    ///   step engine clears a pending prefix only *after* a successful
    ///   Type-A access, so at the fault point it would still hold it
    ///   (Type-B consumers take the prefix before the access, so those
    ///   need no restore).
    fn exec_block<S: TraceSink>(
        &mut self,
        b: &Block,
        budget: u64,
        sink: &mut S,
    ) -> Result<u64, RunError> {
        debug_assert!(!self.cpu.has_imm_prefix(), "blocks are lowered for prefix-free entry");
        let mut events = std::mem::take(&mut self.block_events);
        let mut eas = std::mem::take(&mut self.block_eas);
        let mut total = 0u64;
        // Statistics are batched across the whole dispatch (every
        // iteration retires the same per-class deltas, and u64 sums are
        // order-independent, so the totals stay bit-identical): the
        // per-iteration cost of the O(classes) array update would rival
        // a two-op loop body. Sink retirements stay per-iteration —
        // profiler heat and trace summaries observe each one.
        let mut iters = 0u64;
        let mut guards = 0u64;
        let mut guards_taken = 0u64;
        let mut guard_cycles = 0u64;

        // Loop-invariant: whether the guard chains back to this block's
        // own head (the in-dispatch iteration case).
        let loops_to_head = b.guard.as_ref().is_some_and(|g| g.target == b.head);

        'iterate: loop {
            if S::WANTS_EVENTS || S::WANTS_RECORDS {
                events.clear();
                eas.clear();
            }
            let mut body = 0u64;
            let mut pc = b.head;

            for (i, op) in b.ops.iter().enumerate() {
                match self.exec_effect(pc, op) {
                    Err(err) => {
                        if matches!(op.effect, Effect::Load { .. } | Effect::Store { .. }) {
                            if let Some(prev) = i.checked_sub(1).map(|p| &b.ops[p]) {
                                if let Effect::ImmFused { hi } = prev.effect {
                                    self.cpu.set_imm_prefix(hi);
                                }
                            }
                        }
                        self.flush_partial_block(b, i, None, &events, &eas, sink);
                        self.cpu.set_pc(pc);
                        self.flush_trace_stats(b, iters, guards, guards_taken, guard_cycles);
                        self.block_events = events;
                        self.block_eas = eas;
                        return Err(err);
                    }
                    Ok((cycles, ea)) => {
                        body += u64::from(cycles);
                        if S::WANTS_EVENTS {
                            events.push(TraceEvent {
                                pc,
                                insn: op.insn,
                                cycles,
                                taken: None,
                                target: None,
                                ea,
                            });
                        } else if S::WANTS_RECORDS {
                            // A discarding sink never replays the
                            // prefix, so skip remembering addresses.
                            if let Some(a) = ea {
                                eas.push((i as u32, a));
                            }
                        }
                        pc = pc.wrapping_add(4);
                        if ea.is_some_and(|a| a >= OPB_BASE) {
                            // Peripheral touched mid-block: retire the
                            // prefix, poll the exit port (the step-path
                            // contract), and split future blocks here.
                            self.flush_partial_block(b, i + 1, Some(cycles), &events, &eas, sink);
                            self.cpu.set_pc(pc);
                            self.blocks.learn_opb(pc.wrapping_sub(4));
                            if self.halted.is_none() {
                                self.halted = self.opb.exit_request();
                            }
                            self.flush_trace_stats(b, iters, guards, guards_taken, guard_cycles);
                            self.block_events = events;
                            self.block_eas = eas;
                            return Ok(total + body);
                        }
                    }
                }
            }

            debug_assert_eq!(body, b.cycles, "static block cost must match actual retirement");
            iters += 1;
            sink.retire_block(&BlockRetire {
                head: b.head,
                instructions: b.ops.len() as u32,
                cycles: b.cycles,
                class_insns: &b.class_insns,
                insn_cycles: &b.insn_cycles,
                events: &events,
            });
            total += body;

            // The PC only needs storing on paths that leave the loop:
            // a retired guard overwrites it with the target or the
            // fall-through anyway.
            let Some(g) = &b.guard else {
                self.cpu.set_pc(pc);
                break 'iterate;
            };
            if total >= budget {
                self.cpu.set_pc(pc);
                // The step engine would have stopped at this boundary,
                // before fetching the guard branch — still holding the
                // prefix of a trailing `imm` fused into the guard.
                if let Some(Effect::ImmFused { hi }) = b.ops.last().map(|o| o.effect) {
                    self.cpu.set_imm_prefix(hi);
                }
                break 'iterate;
            }
            let (taken, gcycles) = self.retire_guard(g, pc, 0, sink);
            guards += 1;
            guards_taken += u64::from(taken);
            guard_cycles += u64::from(gcycles);
            total += u64::from(gcycles);
            // `total + b.cycles <= budget` implies `total < budget` for
            // any non-empty body; saturating keeps that sound even at
            // a `u64::MAX` budget.
            if taken && loops_to_head && total.saturating_add(b.cycles) <= budget {
                continue 'iterate;
            }
            // Side exit (guard failed or jumped elsewhere), or the next
            // iteration would cross a boundary the step engine must own.
            break 'iterate;
        }

        self.flush_trace_stats(b, iters, guards, guards_taken, guard_cycles);
        self.block_events = events;
        self.block_eas = eas;
        Ok(total)
    }

    /// Applies the statistics a trace dispatch batched up: `iters`
    /// fully-retired bodies of `b` plus `guards` guard retirements
    /// (`guards_taken` of them taken, costing `guard_cycles` in total).
    #[inline]
    fn flush_trace_stats(
        &mut self,
        b: &Block,
        iters: u64,
        guards: u64,
        guards_taken: u64,
        guard_cycles: u64,
    ) {
        if iters > 0 {
            self.stats.record_block_scaled(&b.class_insns, &b.class_cycles, iters);
        }
        if guards > 0 {
            let g = b.guard.as_ref().expect("guard retirements imply a chained guard");
            self.stats.record_guards(g.class, guard_cycles, guards, guards_taken);
        }
        // Engine attribution: the dispatch's first body and first guard
        // belong to the superblock tier; everything chained in place past
        // them is the megablock trace tier's contribution.
        let body = b.ops.len() as u64;
        self.stats.attribute_block(iters.min(1) * body + guards.min(1));
        self.stats.attribute_trace(iters.saturating_sub(1) * body + guards.saturating_sub(1));
    }

    /// Retires a fused block op-at-a-time — the dispatch mode for
    /// configurations with caches, whose waits are state-dependent.
    ///
    /// This replaces the old silent downgrade to per-instruction
    /// stepping: the lowered ops still skip per-word refetch and
    /// redecode, but every op pays its icache fetch wait (ops map 1:1
    /// onto architectural words, so the access sequence is the step
    /// engine's), checks the remaining budget at the same boundaries the
    /// step engine would, and records statistics and events
    /// individually. A chained guard retires the same way when the
    /// budget still has room. Never sets the dispatch loop's stepping
    /// tail — a mid-block budget expiry returns at the exact
    /// architectural boundary directly.
    fn exec_block_careful<S: TraceSink>(
        &mut self,
        b: &Block,
        budget: u64,
        sink: &mut S,
    ) -> Result<u64, RunError> {
        debug_assert!(!self.cpu.has_imm_prefix(), "blocks are lowered for prefix-free entry");
        let mut total = 0u64;
        let mut pc = b.head;

        for (i, op) in b.ops.iter().enumerate() {
            if total >= budget {
                // The step engine stops at this very boundary — and if
                // the op just retired was a fused `imm`, it would still
                // hold the architectural prefix here.
                if let Some(prev) = i.checked_sub(1).map(|p| &b.ops[p]) {
                    if let Effect::ImmFused { hi } = prev.effect {
                        self.cpu.set_imm_prefix(hi);
                    }
                }
                self.cpu.set_pc(pc);
                return Ok(total);
            }
            let fetch_wait = self.icache.as_mut().map_or(0, |c| c.access(pc));
            match self.exec_effect(pc, op) {
                Err(err) => {
                    if matches!(op.effect, Effect::Load { .. } | Effect::Store { .. }) {
                        if let Some(prev) = i.checked_sub(1).map(|p| &b.ops[p]) {
                            if let Effect::ImmFused { hi } = prev.effect {
                                self.cpu.set_imm_prefix(hi);
                            }
                        }
                    }
                    self.cpu.set_pc(pc);
                    return Err(err);
                }
                Ok((cycles, ea)) => {
                    let cycles = cycles + fetch_wait;
                    total += u64::from(cycles);
                    self.stats.record(op.class, cycles);
                    self.stats.attribute_block(1);
                    sink.record(&TraceEvent {
                        pc,
                        insn: op.insn,
                        cycles,
                        taken: None,
                        target: None,
                        ea,
                    });
                    pc = pc.wrapping_add(4);
                    if ea.is_some_and(|a| a >= OPB_BASE) {
                        self.cpu.set_pc(pc);
                        self.blocks.learn_opb(pc.wrapping_sub(4));
                        if self.halted.is_none() {
                            self.halted = self.opb.exit_request();
                        }
                        return Ok(total);
                    }
                }
            }
        }

        self.cpu.set_pc(pc);
        if let Some(g) = &b.guard {
            if total < budget {
                let fetch_wait = self.icache.as_mut().map_or(0, |c| c.access(pc));
                let (taken, gcycles) = self.retire_guard(g, pc, fetch_wait, sink);
                self.stats.record_guards(g.class, u64::from(gcycles), 1, u64::from(taken));
                self.stats.attribute_block(1);
                total += u64::from(gcycles);
            } else if let Some(Effect::ImmFused { hi }) = b.ops.last().map(|o| o.effect) {
                // Stopping just before the guard: a trailing fused
                // `imm`'s prefix is still architecturally pending.
                self.cpu.set_imm_prefix(hi);
            }
        }
        Ok(total)
    }

    /// The one budget-tracking loop behind [`System::run_with_sink`] and
    /// [`System::run_slice`].
    ///
    /// The budget is tracked from each dispatch's return value — every
    /// step or block retirement returns exactly the cycles it recorded —
    /// so the loop touches no statistics until it stops.
    ///
    /// With the superblock engine on (see [`MbConfig::blocks`]) the loop
    /// retires a whole fused block — iterated in place while its loop
    /// guard holds, see [`MbConfig::traces`] — per iteration whenever
    /// one exists at the PC, the CPU holds no pending `imm` prefix, and
    /// the block's precomputed cost fits the remaining budget; otherwise
    /// it falls back to [`System::step`]. Because every interior
    /// boundary of a fitting block satisfies `cycles < max_cycles`, the
    /// step engine would never have stopped inside it — so sliced
    /// executions stop at bit-identical instruction boundaries with
    /// blocks on or off. Once a block no longer fits, the tail of the
    /// budget is stepped instruction by instruction (`stepping_tail`),
    /// which both honors the exact boundary and avoids building suffix
    /// blocks at every slice-dependent split point.
    ///
    /// With caches configured the static precomputed cost is a lower
    /// bound, not the truth, so dispatch goes through
    /// [`System::exec_block_careful`]: per-op budget checks and cache
    /// waits, no fit precheck, no stepping tail — but never a silent
    /// downgrade to [`System::step`] (see [`System::active_engine`]).
    ///
    /// Ordering contract: the exit check runs **before** the budget
    /// check. The exit port is polled after OPB-touching retirements
    /// (inside [`System::step`], and at the OPB early-out of the block
    /// engine), so a retirement that writes the port can also be the one
    /// that exhausts the budget; reporting that boundary as
    /// [`StopReason::CycleLimit`] would make a sliced execution lose the
    /// exit code for exactly one slice — the off-by-one this ordering
    /// rules out. `boundary_on_exit_step_reports_exited` pins it.
    fn run_budgeted<S: TraceSink>(
        &mut self,
        max_cycles: u64,
        sink: &mut S,
    ) -> Result<Outcome, RunError> {
        let start_insns = self.stats.instructions();
        let mut cycles = 0u64;
        let use_blocks = self.blocks_enabled();
        let careful = use_blocks && (self.icache.is_some() || self.dcache.is_some());
        let mut stepping_tail = false;
        loop {
            if let Some(code) = self.halted {
                return Ok(Outcome {
                    stop: StopReason::Exited(code),
                    cycles,
                    instructions: self.stats.instructions() - start_insns,
                });
            }
            if cycles >= max_cycles {
                return Ok(Outcome {
                    stop: StopReason::CycleLimit,
                    cycles,
                    instructions: self.stats.instructions() - start_insns,
                });
            }
            if use_blocks && !stepping_tail && !self.cpu.has_imm_prefix() {
                if let Some(block) = self.block_at(self.cpu.pc()) {
                    let remaining = max_cycles - cycles;
                    if careful {
                        cycles += self.exec_block_careful(&block, remaining, sink)?;
                        continue;
                    }
                    if block.cycles <= remaining {
                        cycles += self.exec_block(&block, remaining, sink)?;
                        continue;
                    }
                    stepping_tail = true;
                }
            }
            cycles += u64::from(self.step(sink)?);
        }
    }

    /// Eagerly builds every derived store for the loaded instruction
    /// image: pre-decodes each word and lowers the fused block (and
    /// chained loop trace) at every possible entry point. Dispatch
    /// normally builds these lazily on first touch; a long-running host
    /// that wants predictable first-slice latency — or a benchmark
    /// measuring steady-state engine throughput rather than one-time
    /// lowering cost — calls this once after loading the program.
    /// Execution is identical either way: the stores are keyed by the
    /// instruction memory's generation and rebuild after a patch
    /// exactly as lazily-built ones do. Zero words — BRAM padding
    /// beyond the loaded image — are skipped, as are words that do not
    /// decode; anything the skip misjudges is simply built lazily on
    /// first dispatch as before. A configuration without pre-decoded
    /// fetch re-decodes every fetch by design, so there is nothing to
    /// warm and this is a no-op.
    pub fn prewarm(&mut self) {
        let size = self.imem.size();
        for pc in (0..size).step_by(4) {
            if self.imem.read_word(pc).is_ok_and(|w| w == 0) {
                continue;
            }
            if self.config.predecode {
                let System { decode, imem, config, .. } = self;
                let _ = decode.fetch(imem, &config.features, pc);
            }
            if self.blocks_enabled() {
                let _ = self.block_at(pc);
            }
        }
    }

    /// Freezes this system's per-program artifacts — instruction words,
    /// pre-decoded slots, and built block/trace tables — into a
    /// [`ProgramImage`] that any number of sibling systems can attach
    /// read-only via [`System::attach_image`].
    ///
    /// Call on a *warmed* system: load the program, [`prewarm`], run it
    /// to completion once (so the block store has learned OPB store
    /// splits), and [`prewarm`] again (the learn invalidated the
    /// exit-sequence block). The derived stores are synced here before
    /// freezing, so a capture straight after a patch is also coherent —
    /// but an unwarmed capture just bakes in empty tables that siblings
    /// rebuild privately, losing the sharing win.
    ///
    /// Freezing converts the live stores to shared mode in place; the
    /// captured system keeps running and detaches private copies on its
    /// next patch like any other sibling.
    ///
    /// [`prewarm`]: System::prewarm
    pub fn capture_image(&mut self, entry_pc: u32) -> ProgramImage {
        self.decode.sync(&self.imem);
        self.blocks.sync(&self.imem);
        let generation = self.imem.generation();
        ProgramImage {
            entry_pc,
            generation,
            words: self.imem.freeze(),
            slots: self.decode.freeze(),
            tables: self.blocks.freeze(),
        }
    }

    /// Attaches a captured [`ProgramImage`]: instruction memory,
    /// pre-decoded slots, and block tables become shared read-only
    /// views, and the PC points at the image's entry. The first
    /// instruction-memory write detaches private copies (copy-on-patch),
    /// so hot-patching works exactly as with owned stores.
    ///
    /// Run state (registers, data memory, caches, stats, peripherals) is
    /// untouched — pair with [`System::reset_run_state`] when recycling
    /// a used system. The image must come from a system with this
    /// system's configuration; debug builds assert the memory geometry
    /// matches.
    pub fn attach_image(&mut self, image: &ProgramImage) {
        debug_assert_eq!(
            self.imem.size() as usize,
            image.words.len() * 4,
            "image captured under a different imem geometry"
        );
        self.imem.attach_shared(std::sync::Arc::clone(&image.words), image.generation);
        self.decode.attach_shared(std::sync::Arc::clone(&image.slots), image.generation);
        self.blocks.attach_shared(std::sync::Arc::clone(&image.tables), image.generation);
        self.cpu.set_pc(image.entry_pc);
    }

    /// Resets everything a finished run dirtied — CPU registers, data
    /// memory, caches, statistics, the exit latch and other peripheral
    /// state — without touching instruction memory or the derived
    /// stores, and points the PC at `entry_pc`.
    ///
    /// This is the pool-recycling primitive: a recycled system reruns
    /// bit-identically to a freshly built one, but keeps its attached
    /// [`ProgramImage`] (or its privately warmed stores, standing
    /// patches included) and performs no allocation.
    pub fn reset_run_state(&mut self, entry_pc: u32) {
        self.cpu.reset();
        self.cpu.set_pc(entry_pc);
        self.dmem.clear();
        self.halted = None;
        self.stats = ExecStats::new();
        self.opb.reset_all();
        if let Some(c) = &mut self.icache {
            c.reset();
        }
        if let Some(c) = &mut self.dcache {
            c.reset();
        }
    }

    /// Removes the peripheral mapped at `base`, if any. Recycled
    /// systems unmap the previous session's devices before mapping
    /// their own — bus routing returns the first match, so a stale
    /// mapping would shadow the replacement.
    pub fn unmap_peripheral(&mut self, base: u32) {
        self.opb.unmap(base);
    }

    /// Runs until the program exits or `max_cycles` elapse, feeding
    /// every retired instruction to `sink`.
    ///
    /// This is the monomorphized run loop every other `run_*` entry
    /// point is a thin wrapper over.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`System::step`].
    pub fn run_with_sink<S: TraceSink>(
        &mut self,
        max_cycles: u64,
        sink: &mut S,
    ) -> Result<Outcome, RunError> {
        self.run_budgeted(max_cycles, sink)
    }

    /// Runs one bounded slice of execution: at most `slice_cycles`
    /// cycles from the current machine state, feeding every retired
    /// instruction to `sink`.
    ///
    /// This is the co-simulation interface for an online partitioning
    /// runtime: the caller interleaves slices with profiler queries and
    /// mid-run instruction-memory patches through
    /// [`System::imem_mut`] (the pre-decoded fetch store notices the
    /// patch via [`Bram::generation`]). All state lives in the system,
    /// so slices resume exactly where the previous slice stopped and a
    /// sliced execution retires the identical instruction stream as one
    /// [`System::run_with_sink`] call — `Outcome` fields are per-slice.
    ///
    /// Steps are atomic: a slice never splits a delayed branch from its
    /// delay slot, so the returned `cycles` may overshoot
    /// `slice_cycles` by at most one step. Callers accounting simulated
    /// time must sum the returned `cycles`, not the requested budgets.
    /// A slice whose final step writes the exit port reports
    /// [`StopReason::Exited`] in that same slice (never
    /// [`StopReason::CycleLimit`]); once exited, further slices return
    /// `Exited` with zero cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`System::step`].
    pub fn run_slice<S: TraceSink>(
        &mut self,
        slice_cycles: u64,
        sink: &mut S,
    ) -> Result<Outcome, RunError> {
        self.run_budgeted(slice_cycles, sink)
    }

    /// Runs until the program exits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`System::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<Outcome, RunError> {
        self.run_with_sink(max_cycles, &mut NullSink)
    }

    /// Runs like [`System::run`] while recording a full instruction
    /// trace.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`System::step`].
    pub fn run_traced(&mut self, max_cycles: u64) -> Result<(Outcome, Trace), RunError> {
        let mut trace = Trace::new();
        let outcome = self.run_with_sink(max_cycles, &mut trace)?;
        Ok((outcome, trace))
    }

    /// Runs like [`System::run`] while streaming per-PC/class aggregates
    /// into a [`TraceSummary`], never materializing the event vector.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`System::step`].
    pub fn run_summarized(&mut self, max_cycles: u64) -> Result<(Outcome, TraceSummary), RunError> {
        let mut summary = TraceSummary::new();
        let outcome = self.run_with_sink(max_cycles, &mut summary)?;
        Ok((outcome, summary))
    }
}

// A `System` (with every mapped peripheral behind the OPB) is an owned,
// movable session: the multi-session server migrates it between worker
// threads at slice boundaries. Fail the build loudly if any engine
// store, sink plumbing, or peripheral regains thread-pinned state.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<System>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Assembler, Reg};

    fn exit_sequence(a: &mut Assembler) {
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    }

    fn run_program(build: impl FnOnce(&mut Assembler)) -> System {
        let mut a = Assembler::new(0);
        build(&mut a);
        exit_sequence(&mut a);
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let out = sys.run(1_000_000).unwrap();
        assert!(out.exited(), "program must exit, stopped at pc {:#x}", sys.cpu().pc());
        sys
    }

    #[test]
    fn arithmetic_and_logic() {
        let sys = run_program(|a| {
            a.li(Reg::R3, 20);
            a.li(Reg::R4, 22);
            a.push(Insn::addk(Reg::R5, Reg::R3, Reg::R4)); // 42
            a.push(Insn::rsubk(Reg::R6, Reg::R3, Reg::R4)); // 22-20 = 2
            a.push(Insn::Xor { rd: Reg::R7, ra: Reg::R3, rb: Reg::R4 });
            a.push(Insn::Andn { rd: Reg::R8, ra: Reg::R4, rb: Reg::R3 });
        });
        assert_eq!(sys.cpu().reg(Reg::R5), 42);
        assert_eq!(sys.cpu().reg(Reg::R6), 2);
        assert_eq!(sys.cpu().reg(Reg::R7), 20 ^ 22);
        assert_eq!(sys.cpu().reg(Reg::R8), 22 & !20);
    }

    #[test]
    fn carry_chain_addc() {
        let sys = run_program(|a| {
            // 0xFFFF_FFFF + 1 sets carry; addc folds it into the high word.
            a.li(Reg::R3, -1);
            a.li(Reg::R4, 1);
            a.push(Insn::add(Reg::R5, Reg::R3, Reg::R4)); // 0, carry=1
            a.push(Insn::Add {
                rd: Reg::R6,
                ra: Reg::R0,
                rb: Reg::R0,
                keep_carry: false,
                use_carry: true,
            });
        });
        assert_eq!(sys.cpu().reg(Reg::R5), 0);
        assert_eq!(sys.cpu().reg(Reg::R6), 1, "carry must propagate via addc");
    }

    #[test]
    fn cmp_sets_sign_for_signed_compare() {
        let sys = run_program(|a| {
            a.li(Reg::R3, -5);
            a.li(Reg::R4, 3);
            // cmp rd, ra, rb: sign(rd) = (rb < ra). rb=-5 < ra=3 -> neg.
            a.push(Insn::cmp(Reg::R5, Reg::R4, Reg::R3));
            // Unsigned: 0xFFFF_FFFB > 3 -> not less -> positive.
            a.push(Insn::cmpu(Reg::R6, Reg::R4, Reg::R3));
        });
        assert!((sys.cpu().reg(Reg::R5) as i32) < 0);
        assert!((sys.cpu().reg(Reg::R6) as i32) >= 0);
    }

    #[test]
    fn loads_stores_and_subword() {
        let sys = run_program(|a| {
            a.li(Reg::R3, 0x11223344);
            a.li(Reg::R4, 0x100);
            a.push(Insn::swi(Reg::R3, Reg::R4, 0));
            a.push(Insn::lbui(Reg::R5, Reg::R4, 1)); // big endian: 0x22
            a.push(Insn::Loadi { size: MemSize::Half, rd: Reg::R6, ra: Reg::R4, imm: 2 });
            a.push(Insn::sbi(Reg::R3, Reg::R4, 7)); // low byte 0x44
            a.push(Insn::lwi(Reg::R7, Reg::R4, 4));
        });
        assert_eq!(sys.cpu().reg(Reg::R5), 0x22);
        assert_eq!(sys.cpu().reg(Reg::R6), 0x3344);
        assert_eq!(sys.cpu().reg(Reg::R7), 0x0000_0044);
        assert_eq!(sys.dmem().read_word(0x100).unwrap(), 0x11223344);
    }

    #[test]
    fn loop_counts_and_branch_stats() {
        let sys = run_program(|a| {
            a.li(Reg::R3, 5);
            a.li(Reg::R4, 0);
            a.label("loop");
            a.push(Insn::addik(Reg::R4, Reg::R4, 2));
            a.push(Insn::addik(Reg::R3, Reg::R3, -1));
            a.bnei(Reg::R3, "loop");
        });
        assert_eq!(sys.cpu().reg(Reg::R4), 10);
        // 4 taken backward branches + 1 not taken.
        assert_eq!(sys.stats().backward_taken, 4);
        assert_eq!(sys.stats().branches_not_taken, 1);
    }

    #[test]
    fn delay_slot_executes_before_jump() {
        let sys = run_program(|a| {
            a.li(Reg::R3, 1);
            a.brid("target"); // delayed branch
            a.push(Insn::addik(Reg::R3, Reg::R3, 10)); // delay slot runs
            a.push(Insn::addik(Reg::R3, Reg::R3, 100)); // skipped
            a.label("target");
        });
        assert_eq!(sys.cpu().reg(Reg::R3), 11);
    }

    #[test]
    fn call_and_return() {
        let sys = run_program(|a| {
            a.li(Reg::R5, 7);
            a.call("double");
            a.push(Insn::addk(Reg::R20, Reg::R3, Reg::R0));
            a.bri("done");
            a.label("double");
            a.push(Insn::addk(Reg::R3, Reg::R5, Reg::R5));
            a.ret();
            a.label("done");
        });
        assert_eq!(sys.cpu().reg(Reg::R20), 14);
    }

    #[test]
    fn imm_prefix_builds_32bit_constants() {
        let sys = run_program(|a| {
            a.li(Reg::R3, 0x1234_5678);
            a.li(Reg::R4, -123456);
        });
        assert_eq!(sys.cpu().reg(Reg::R3), 0x1234_5678);
        assert_eq!(sys.cpu().reg(Reg::R4) as i32, -123456);
    }

    #[test]
    fn mul_without_multiplier_faults() {
        let mut a = Assembler::new(0);
        a.push(Insn::mul(Reg::R3, Reg::R4, Reg::R5));
        let p = a.finish().unwrap();
        let cfg = MbConfig::paper_default().with_features(mb_isa::MbFeatures::minimal());
        let mut sys = System::new(cfg);
        sys.load_program(&p).unwrap();
        assert_eq!(sys.run(100), Err(RunError::UnsupportedInsn { pc: 0 }));
    }

    #[test]
    fn unmapped_opb_address_faults() {
        let mut a = Assembler::new(0);
        a.li(Reg::R4, (OPB_BASE + 0x1000) as i32);
        a.push(Insn::lwi(Reg::R3, Reg::R4, 0));
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let err = sys.run(100).unwrap_err();
        assert!(matches!(err, RunError::UnmappedAddress { .. }));
    }

    #[test]
    fn cycle_limit_stops_infinite_loop() {
        let mut a = Assembler::new(0);
        a.label("spin");
        a.bri("spin");
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let out = sys.run(1000).unwrap();
        assert_eq!(out.stop, StopReason::CycleLimit);
        assert!(out.cycles >= 1000);
    }

    /// A counting loop ending in the exit-port store, for slice tests.
    fn sliceable_program(iters: i32) -> mb_isa::Program {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, iters);
        a.label("loop");
        a.push(Insn::addik(Reg::R4, Reg::R4, 3));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        exit_sequence(&mut a);
        a.finish().unwrap()
    }

    #[test]
    fn sliced_run_equals_monolithic_run_for_any_slice_size() {
        let program = sliceable_program(100);
        let mut mono = System::new(MbConfig::paper_default());
        mono.load_program(&program).unwrap();
        let expected = mono.run(1_000_000).unwrap();
        assert!(expected.exited());

        // Slice sizes chosen to land boundaries everywhere: mid-loop,
        // on branches, and (size 1) after literally every step.
        for slice in [1u64, 2, 3, 5, 7, 64, 1_000_000] {
            let mut sys = System::new(MbConfig::paper_default());
            sys.load_program(&program).unwrap();
            let mut cycles = 0u64;
            let mut instructions = 0u64;
            let last = loop {
                let out = sys.run_slice(slice, &mut NullSink).unwrap();
                cycles += out.cycles;
                instructions += out.instructions;
                if out.exited() {
                    break out;
                }
                assert_eq!(out.stop, StopReason::CycleLimit);
            };
            assert_eq!(last.stop, expected.stop, "slice {slice}");
            assert_eq!(cycles, expected.cycles, "slice {slice}: total cycles must match");
            assert_eq!(instructions, expected.instructions, "slice {slice}");
            assert_eq!(sys.cpu().reg(Reg::R4), mono.cpu().reg(Reg::R4), "slice {slice}");
            assert_eq!(sys.stats(), mono.stats(), "slice {slice}");
        }
    }

    #[test]
    fn boundary_on_exit_step_reports_exited() {
        // Find the exact cycle count of the run, then slice so the
        // budget is exhausted by the very step that writes the exit
        // port (an OPB-touching step): the slice must say Exited, not
        // CycleLimit — the off-by-one `run_budgeted`'s check order
        // prevents.
        let program = sliceable_program(3);
        let mut probe = System::new(MbConfig::paper_default());
        probe.load_program(&program).unwrap();
        let total = probe.run(1_000_000).unwrap();
        assert!(total.exited());

        // The exit store costs 2 cycles, so budgets `total` and
        // `total - 1` are both exhausted by the very step that writes
        // the port.
        for budget in [total.cycles, total.cycles - 1] {
            let mut sys = System::new(MbConfig::paper_default());
            sys.load_program(&program).unwrap();
            let first = sys.run_slice(budget, &mut NullSink).unwrap();
            assert_eq!(
                first.stop,
                StopReason::Exited(0),
                "budget {budget} of {} landed on/after the exit store",
                total.cycles
            );
            assert_eq!(first.cycles, total.cycles);
            // The exit is sticky: further slices are zero-cost no-ops.
            let after = sys.run_slice(1000, &mut NullSink).unwrap();
            assert_eq!(after.stop, StopReason::Exited(0));
            assert_eq!(after.cycles, 0);
            assert_eq!(after.instructions, 0);
        }

        // One cycle earlier the slice ends just *before* the exit store:
        // CycleLimit, with the exit delivered by the next slice.
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&program).unwrap();
        let first = sys.run_slice(total.cycles - 2, &mut NullSink).unwrap();
        assert_eq!(first.stop, StopReason::CycleLimit);
        let second = sys.run_slice(1000, &mut NullSink).unwrap();
        assert_eq!(second.stop, StopReason::Exited(0));
        assert_eq!(first.cycles + second.cycles, total.cycles);
    }

    #[test]
    fn zero_budget_slice_runs_nothing_but_reports_exit() {
        let program = sliceable_program(2);
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&program).unwrap();
        let out = sys.run_slice(0, &mut NullSink).unwrap();
        assert_eq!(out.stop, StopReason::CycleLimit);
        assert_eq!(out.cycles, 0);
        sys.run(1_000_000).unwrap();
        let out = sys.run_slice(0, &mut NullSink).unwrap();
        assert_eq!(out.stop, StopReason::Exited(0), "exit visible even to a zero-budget slice");
    }

    #[test]
    fn trace_records_branches_and_memory() {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, 2);
        a.label("loop");
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let (out, trace) = sys.run_traced(10_000).unwrap();
        assert!(out.exited());
        assert_eq!(trace.len() as u64, out.instructions);
        assert!(trace.iter().any(|e| e.is_backward_taken_branch()));
        assert!(trace.iter().any(|e| e.ea.is_some()));
        assert_eq!(trace.cycles(), out.cycles);
    }

    #[test]
    fn timing_loop_matches_hand_count() {
        // li(1) + loop of 3 iterations: addik(1) + bnei(taken 2, not 1)
        // + exit li(1) + swi(2).
        let mut a = Assembler::new(0);
        a.li(Reg::R3, 3);
        a.label("loop");
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let out = sys.run(10_000).unwrap();
        // 1 + (1+2) + (1+2) + (1+1) + 2 (li long? no: EXIT_PORT_BASE needs
        // imm prefix: 2 words = imm(1)+addik(1)) + swi(2).
        let expected = 1 + (1 + 2) + (1 + 2) + (1 + 1) + 1 + 1 + 2;
        assert_eq!(out.cycles, expected);
    }
}
