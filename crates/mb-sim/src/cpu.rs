//! CPU architectural state.

use mb_isa::Reg;

/// MicroBlaze architectural state: 32 GPRs (r0 hard-wired to zero), the
/// program counter, the MSR carry flag, and the `imm`-prefix register.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    carry: bool,
    imm_prefix: Option<u16>,
}

impl Cpu {
    /// Creates a CPU with all registers zero and PC at 0.
    #[must_use]
    pub fn new() -> Self {
        Cpu { regs: [0; 32], pc: 0, carry: false, imm_prefix: None }
    }

    /// Reads a register; `r0` always reads zero.
    ///
    /// Invariant: `regs[0]` is kept at zero by [`set_reg`](Cpu::set_reg),
    /// so reads need no special case on the simulator's hottest path.
    /// The `& 31` is a no-op for every constructible [`Reg`] (numbers
    /// are `0..=31`) but lets the compiler drop the bounds check — one
    /// branch per operand read, two to three times per simulated
    /// instruction.
    #[inline]
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() & 31]
    }

    /// Writes a register; writes to `r0` are ignored (the slot is
    /// re-zeroed unconditionally, which is branchless). The `& 31`
    /// drops the bounds check exactly as in [`reg`](Cpu::reg).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index() & 31] = value;
        self.regs[0] = 0;
    }

    /// The program counter.
    #[must_use]
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// The MSR carry flag.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// Sets the MSR carry flag.
    pub fn set_carry(&mut self, carry: bool) {
        self.carry = carry;
    }

    /// Installs an `imm` prefix supplying the upper 16 bits of the next
    /// Type B immediate.
    pub fn set_imm_prefix(&mut self, hi: i16) {
        self.imm_prefix = Some(hi as u16);
    }

    /// Combines a 16-bit instruction immediate with any pending `imm`
    /// prefix (consuming it); without a prefix the immediate is
    /// sign-extended.
    #[inline]
    pub fn take_imm(&mut self, imm16: i16) -> u32 {
        match self.imm_prefix.take() {
            Some(hi) => (u32::from(hi) << 16) | u32::from(imm16 as u16),
            None => imm16 as i32 as u32,
        }
    }

    /// Clears any pending `imm` prefix (instructions other than Type B
    /// consume the prefix without using it).
    #[inline]
    pub fn clear_imm_prefix(&mut self) {
        self.imm_prefix = None;
    }

    /// Whether an `imm` prefix is pending.
    #[must_use]
    pub fn has_imm_prefix(&self) -> bool {
        self.imm_prefix.is_some()
    }

    /// Resets registers, PC, carry, and the prefix register.
    pub fn reset(&mut self) {
        *self = Cpu::new();
    }

    /// The raw register file, `r0` included — used by the lane engine to
    /// materialize one lane's plane column as an ordinary [`Cpu`] for
    /// the bit-equality suites.
    pub(crate) fn regs_mut(&mut self) -> &mut [u32; 32] {
        &mut self.regs
    }

    /// Restores a raw pending `imm` prefix (upper 16 bits) when the
    /// lane engine materializes a plane column as a [`Cpu`].
    pub(crate) fn set_imm_prefix_raw(&mut self, prefix: Option<u16>) {
        self.imm_prefix = prefix;
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut c = Cpu::new();
        c.set_reg(Reg::R0, 55);
        assert_eq!(c.reg(Reg::R0), 0);
        c.set_reg(Reg::R1, 55);
        assert_eq!(c.reg(Reg::R1), 55);
    }

    #[test]
    fn imm_prefix_concatenates_once() {
        let mut c = Cpu::new();
        c.set_imm_prefix(0x1234u16 as i16);
        assert!(c.has_imm_prefix());
        assert_eq!(c.take_imm(0x5678), 0x1234_5678);
        // Consumed: next immediate sign-extends.
        assert_eq!(c.take_imm(-1), 0xFFFF_FFFF);
    }

    #[test]
    fn imm_prefix_with_negative_low_half_is_not_sign_extended() {
        let mut c = Cpu::new();
        c.set_imm_prefix(0x0001u16 as i16);
        // 0x0001:0x8000 must be 0x0001_8000, not 0x0000_8000 or sign mess.
        assert_eq!(c.take_imm(0x8000u16 as i16), 0x0001_8000);
    }

    #[test]
    fn clear_imm_prefix_discards() {
        let mut c = Cpu::new();
        c.set_imm_prefix(7);
        c.clear_imm_prefix();
        assert_eq!(c.take_imm(1), 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = Cpu::new();
        c.set_reg(Reg::R5, 9);
        c.set_pc(0x40);
        c.set_carry(true);
        c.reset();
        assert_eq!(c, Cpu::new());
    }
}
