//! Block RAM model.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mb_isa::MemSize;

/// Error for out-of-range or misaligned memory accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The byte address lies outside the BRAM.
    OutOfRange {
        /// Offending byte address.
        addr: u32,
        /// Size of the BRAM in bytes.
        size: u32,
    },
    /// The access is not aligned to its width.
    Misaligned {
        /// Offending byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size } => {
                write!(f, "address {addr:#010x} outside memory of {size} bytes")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#010x} not {align}-byte aligned")
            }
        }
    }
}

impl Error for MemError {}

/// How many disjoint write spans the [`Bram`] write log keeps before it
/// starts forgetting the oldest (forcing consumers behind that point to
/// resync fully). Patches are a handful of contiguous ranges, so a small
/// cap captures every realistic invalidation exactly.
const WRITE_LOG_CAP: usize = 8;

/// One logged span of written words: the union of all writes with
/// generations in `(previous span's gen, gen]`, inclusive word bounds.
#[derive(Clone, Copy, Debug)]
struct WriteSpan {
    gen: u64,
    lo: u32,
    hi: u32,
}

/// A bounded log of recent write ranges, complete for every generation
/// strictly greater than `base`. Contiguous/overlapping writes merge
/// into the newest span, so a bulk [`Bram::load_words`] or a WCLA patch
/// costs one entry, not one per word.
#[derive(Clone, Debug, Default)]
struct WriteLog {
    base: u64,
    spans: Vec<WriteSpan>,
}

impl WriteLog {
    fn note(&mut self, generation: u64, lo: u32, hi: u32) {
        if let Some(last) = self.spans.last_mut() {
            // Merge only strict adjacent extensions (an upward or
            // downward burst, e.g. `load_words` or a patch loop). A
            // write *inside* an older span must open a fresh span —
            // folding it in would re-stamp the old span's generation
            // and make a one-word patch look like the whole original
            // load to any consumer that synced in between.
            if lo == last.hi + 1 {
                last.hi = hi;
                last.gen = generation;
                return;
            }
            if hi + 1 == last.lo {
                last.lo = lo;
                last.gen = generation;
                return;
            }
        }
        if self.spans.len() == WRITE_LOG_CAP {
            let dropped = self.spans.remove(0);
            self.base = dropped.gen;
        }
        self.spans.push(WriteSpan { gen: generation, lo, hi });
    }

    /// Union of words written since `generation`, or `None` when the log
    /// no longer reaches back that far (spans have gens in ascending
    /// order, so the reverse scan stops at the first span entirely at or
    /// before the query point). Spans over-approximate safely: a span
    /// merged across generations is included whole if any part of it is
    /// newer than the query.
    fn dirty_since(&self, generation: u64) -> Option<(u32, u32)> {
        if generation < self.base {
            return None;
        }
        let mut range: Option<(u32, u32)> = None;
        for s in self.spans.iter().rev() {
            if s.gen <= generation {
                break;
            }
            range = Some(match range {
                Some((lo, hi)) => (lo.min(s.lo), hi.max(s.hi)),
                None => (s.lo, s.hi),
            });
        }
        range
    }
}

/// The BRAM's word storage: privately owned, or a read-only view into a
/// word array shared with sibling BRAMs (a frozen
/// [`ProgramImage`](crate::ProgramImage)). The variants are checked with
/// one branch per access — deliberately *not* `Arc::make_mut` per write,
/// which would put an atomic refcount probe on the simulated store path
/// of every owned data BRAM.
#[derive(Clone, Debug)]
enum Words {
    /// Private storage; mutations write in place.
    Owned(Vec<u32>),
    /// Shared read-only storage; the first mutation detaches a private
    /// copy (copy-on-patch).
    Shared(Arc<Vec<u32>>),
}

impl Words {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            Words::Owned(v) => v,
            Words::Shared(a) => a,
        }
    }

    /// The mutable word array, detaching a private copy first when the
    /// storage is shared.
    #[inline]
    fn make_owned(&mut self) -> &mut Vec<u32> {
        if let Words::Shared(a) = self {
            *self = Words::Owned(a.as_ref().clone());
        }
        match self {
            Words::Owned(v) => v,
            Words::Shared(_) => unreachable!("just detached"),
        }
    }
}

/// A dual-ported block RAM, word-organized with big-endian byte order
/// (matching the MicroBlaze).
///
/// Both the CPU's local memory bus and — for the data BRAM — the WCLA's
/// data address generator access the same array; the dual-ported BRAM of
/// the paper means these accesses do not contend.
///
/// Every mutation bumps a [`generation`](Bram::generation) counter, which
/// is how the simulator's pre-decoded instruction store notices that the
/// DPM patched the running binary through
/// [`imem_mut`](crate::System::imem_mut) and must discard
/// its side table. A BRAM built with [`with_write_log`](Bram::with_write_log)
/// additionally remembers *which* words recent mutations touched, so
/// derived caches can answer "what changed since generation g" through
/// [`dirty_words_since`](Bram::dirty_words_since) and rebuild only the
/// overlapping slots instead of flushing wholesale.
#[derive(Clone, Debug)]
pub struct Bram {
    words: Words,
    generation: u64,
    /// Present only on BRAMs that opted into write tracking (the
    /// instruction BRAM); the data BRAM skips the bookkeeping so
    /// simulated stores stay lean.
    log: Option<WriteLog>,
}

/// Equality compares the stored words only; the mutation generation is
/// bookkeeping, so a patched-then-reverted BRAM equals the original.
impl PartialEq for Bram {
    fn eq(&self, other: &Self) -> bool {
        self.words.as_slice() == other.words.as_slice()
    }
}

impl Eq for Bram {}

impl Bram {
    /// Creates a zero-filled BRAM of `size_bytes` (rounded up to a word).
    #[must_use]
    pub fn new(size_bytes: u32) -> Self {
        Bram {
            words: Words::Owned(vec![0; (size_bytes as usize).div_ceil(4)]),
            generation: 0,
            log: None,
        }
    }

    /// Enables write-range tracking: every mutation is recorded in a
    /// small bounded log so [`dirty_words_since`](Bram::dirty_words_since)
    /// can answer which words changed. The simulator enables this on the
    /// instruction BRAM only — it is what makes predecode/block
    /// invalidation after a WCLA patch incremental.
    #[must_use]
    pub fn with_write_log(mut self) -> Self {
        self.log = Some(WriteLog::default());
        self
    }

    /// Mutation counter: incremented by every write (including sub-word
    /// writes, bulk loads, and [`clear`](Bram::clear)). Derived caches
    /// compare it against the value they were built at and rebuild on
    /// mismatch.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inclusive word-index bounds covering (a superset of) every word
    /// written since `generation`, or `None` when the answer is unknown
    /// — no write log, or the log has already forgotten writes that far
    /// back — in which case callers must resync everything.
    #[must_use]
    pub fn dirty_words_since(&self, generation: u64) -> Option<(u32, u32)> {
        self.log.as_ref().and_then(|log| log.dirty_since(generation))
    }

    /// Bumps the generation for a mutation of the word range
    /// `[lo, hi]`, logging it when tracking is on.
    #[inline]
    fn touch(&mut self, lo: u32, hi: u32) {
        self.generation += 1;
        if let Some(log) = &mut self.log {
            log.note(self.generation, lo, hi);
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        (self.words.as_slice().len() * 4) as u32
    }

    /// The raw word array.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        self.words.as_slice()
    }

    /// Whether the storage is currently a shared read-only view (the
    /// next mutation will detach a private copy).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        matches!(self.words, Words::Shared(_))
    }

    /// Freezes the current contents into a shareable read-only word
    /// array and switches this BRAM to the shared view. Reads are
    /// unchanged; the next mutation detaches a private copy. Returns the
    /// shared array so sibling BRAMs can [`attach_shared`](Bram::attach_shared)
    /// it without copying.
    pub fn freeze(&mut self) -> Arc<Vec<u32>> {
        if let Words::Owned(v) = &mut self.words {
            self.words = Words::Shared(Arc::new(std::mem::take(v)));
        }
        match &self.words {
            Words::Shared(a) => Arc::clone(a),
            Words::Owned(_) => unreachable!("just frozen"),
        }
    }

    /// Replaces the contents with a shared read-only word array captured
    /// at `generation` (a [`Bram::freeze`] of a sibling). The generation
    /// is adopted so consumers attached alongside see a clean store, and
    /// the write log restarts at it so consumers synced *before* the
    /// attach are told to resync fully rather than fed stale spans.
    pub fn attach_shared(&mut self, words: Arc<Vec<u32>>, generation: u64) {
        self.words = Words::Shared(words);
        self.generation = generation;
        if self.log.is_some() {
            self.log = Some(WriteLog { base: generation, spans: Vec::new() });
        }
    }

    #[inline]
    fn word_index(&self, addr: u32, align: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(align) {
            return Err(MemError::Misaligned { addr, align });
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words.as_slice().len() {
            return Err(MemError::OutOfRange { addr, size: self.size() });
        }
        Ok(idx)
    }

    /// Reads a 32-bit word at a 4-aligned byte address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misalignment or out-of-range access.
    #[inline]
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        Ok(self.words.as_slice()[self.word_index(addr, 4)?])
    }

    /// Writes a 32-bit word at a 4-aligned byte address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misalignment or out-of-range access.
    #[inline]
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let idx = self.word_index(addr, 4)?;
        self.words.make_owned()[idx] = value;
        self.touch(idx as u32, idx as u32);
        Ok(())
    }

    /// Reads with the given access width; sub-word reads are
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misalignment or out-of-range access.
    #[inline]
    pub fn read(&self, addr: u32, size: MemSize) -> Result<u32, MemError> {
        match size {
            MemSize::Word => self.read_word(addr),
            MemSize::Half => {
                let idx = self.word_index(addr, 2)?;
                let word = self.words.as_slice()[idx];
                let shift = (2 - (addr & 2)) * 8; // big-endian halves
                Ok((word >> shift) & 0xFFFF)
            }
            MemSize::Byte => {
                let idx = self.word_index(addr, 1)?;
                let word = self.words.as_slice()[idx];
                let shift = (3 - (addr & 3)) * 8; // big-endian bytes
                Ok((word >> shift) & 0xFF)
            }
        }
    }

    /// Writes with the given access width (sub-word writes merge into the
    /// containing word).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misalignment or out-of-range access.
    #[inline]
    pub fn write(&mut self, addr: u32, value: u32, size: MemSize) -> Result<(), MemError> {
        match size {
            MemSize::Word => self.write_word(addr, value),
            MemSize::Half => {
                let idx = self.word_index(addr, 2)?;
                let shift = (2 - (addr & 2)) * 8;
                let mask = 0xFFFFu32 << shift;
                let words = self.words.make_owned();
                words[idx] = (words[idx] & !mask) | ((value & 0xFFFF) << shift);
                self.touch(idx as u32, idx as u32);
                Ok(())
            }
            MemSize::Byte => {
                let idx = self.word_index(addr, 1)?;
                let shift = (3 - (addr & 3)) * 8;
                let mask = 0xFFu32 << shift;
                let words = self.words.make_owned();
                words[idx] = (words[idx] & !mask) | ((value & 0xFF) << shift);
                self.touch(idx as u32, idx as u32);
                Ok(())
            }
        }
    }

    /// Copies a slice of words into the BRAM starting at a byte address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the region does not fit.
    pub fn load_words(&mut self, addr: u32, data: &[u32]) -> Result<(), MemError> {
        for (i, &w) in data.iter().enumerate() {
            self.write_word(addr + (i as u32) * 4, w)?;
        }
        Ok(())
    }

    /// Reads `count` consecutive words starting at a byte address.
    ///
    /// Allocates a fresh `Vec` per call; hot callers (the patch/verify
    /// path) should reuse a buffer through
    /// [`read_words_into`](Bram::read_words_into).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the region does not fit.
    pub fn read_words(&self, addr: u32, count: usize) -> Result<Vec<u32>, MemError> {
        let mut out = vec![0u32; count];
        self.read_words_into(addr, &mut out)?;
        Ok(out)
    }

    /// Fills `out` with consecutive words starting at a byte address,
    /// without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the region does not fit or `addr` is
    /// misaligned; `out` is untouched on error.
    pub fn read_words_into(&self, addr: u32, out: &mut [u32]) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let words = self.words.as_slice();
        let start = (addr / 4) as usize;
        let Some(end) = start.checked_add(out.len()).filter(|&e| e <= words.len()) else {
            // Report the first word that falls outside the BRAM.
            let first_bad = addr + (words.len().saturating_sub(start) as u32) * 4;
            return Err(MemError::OutOfRange { addr: first_bad, size: self.size() });
        };
        out.copy_from_slice(&words[start..end]);
        Ok(())
    }

    /// Fills the entire BRAM with zeros.
    pub fn clear(&mut self) {
        let words = self.words.make_owned();
        words.fill(0);
        let hi = (words.len() as u32).saturating_sub(1);
        self.touch(0, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = Bram::new(64);
        m.write_word(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_word(8).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn big_endian_bytes() {
        let mut m = Bram::new(16);
        m.write_word(0, 0x1122_3344).unwrap();
        assert_eq!(m.read(0, MemSize::Byte).unwrap(), 0x11);
        assert_eq!(m.read(1, MemSize::Byte).unwrap(), 0x22);
        assert_eq!(m.read(2, MemSize::Byte).unwrap(), 0x33);
        assert_eq!(m.read(3, MemSize::Byte).unwrap(), 0x44);
        assert_eq!(m.read(0, MemSize::Half).unwrap(), 0x1122);
        assert_eq!(m.read(2, MemSize::Half).unwrap(), 0x3344);
    }

    #[test]
    fn sub_word_writes_merge() {
        let mut m = Bram::new(16);
        m.write_word(4, 0xAABB_CCDD).unwrap();
        m.write(5, 0xEE, MemSize::Byte).unwrap();
        assert_eq!(m.read_word(4).unwrap(), 0xAAEE_CCDD);
        m.write(6, 0x1234, MemSize::Half).unwrap();
        assert_eq!(m.read_word(4).unwrap(), 0xAAEE_1234);
    }

    #[test]
    fn alignment_enforced() {
        let mut m = Bram::new(16);
        assert_eq!(m.read_word(2), Err(MemError::Misaligned { addr: 2, align: 4 }));
        assert_eq!(m.read(1, MemSize::Half), Err(MemError::Misaligned { addr: 1, align: 2 }));
        assert!(m.write(3, 0, MemSize::Half).is_err());
    }

    #[test]
    fn bounds_enforced() {
        let m = Bram::new(16);
        assert_eq!(m.read_word(16), Err(MemError::OutOfRange { addr: 16, size: 16 }));
        assert!(m.read(100, MemSize::Byte).is_err());
    }

    #[test]
    fn bulk_load_and_read() {
        let mut m = Bram::new(64);
        m.load_words(8, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_words(8, 3).unwrap(), vec![1, 2, 3]);
        m.clear();
        assert_eq!(m.read_word(8).unwrap(), 0);
    }

    #[test]
    fn size_rounds_up() {
        assert_eq!(Bram::new(10).size(), 12);
    }

    #[test]
    fn read_words_into_fills_without_alloc() {
        let mut m = Bram::new(64);
        m.load_words(8, &[1, 2, 3]).unwrap();
        let mut buf = [0u32; 3];
        m.read_words_into(8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        // Errors leave the buffer untouched and match read_word's bounds.
        assert_eq!(
            m.read_words_into(60, &mut buf),
            Err(MemError::OutOfRange { addr: 64, size: 64 })
        );
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(m.read_words_into(2, &mut buf), Err(MemError::Misaligned { addr: 2, align: 4 }));
        m.read_words_into(8, &mut []).unwrap();
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut m = Bram::new(64);
        let g0 = m.generation();
        m.write_word(0, 5).unwrap();
        let g1 = m.generation();
        assert!(g1 > g0);
        m.write(1, 0xAB, MemSize::Byte).unwrap();
        assert!(m.generation() > g1);
        let g2 = m.generation();
        m.load_words(8, &[1, 2]).unwrap();
        assert!(m.generation() > g2);
        let g3 = m.generation();
        m.clear();
        assert!(m.generation() > g3);
        // Reads and failed writes leave the generation alone.
        let g4 = m.generation();
        let _ = m.read_word(0);
        assert!(m.write_word(1, 0).is_err());
        assert_eq!(m.generation(), g4);
    }

    #[test]
    fn untracked_bram_reports_unknown_dirty_range() {
        let mut m = Bram::new(64);
        let g0 = m.generation();
        m.write_word(8, 1).unwrap();
        assert_eq!(m.dirty_words_since(g0), None, "no log, no answer");
    }

    #[test]
    fn write_log_bounds_the_dirtied_words() {
        let mut m = Bram::new(256).with_write_log();
        let g0 = m.generation();
        m.write_word(16, 1).unwrap(); // word 4
        m.write_word(20, 2).unwrap(); // word 5: merges with word 4
        assert_eq!(m.dirty_words_since(g0), Some((4, 5)));
        // A consumer synced mid-burst gets the whole merged span — a
        // safe over-approximation (the span carries one generation).
        let g1 = g0 + 1;
        assert_eq!(m.dirty_words_since(g1), Some((4, 5)));
        // Sub-word writes and bulk loads are tracked too.
        m.write(41, 0xAB, MemSize::Byte).unwrap(); // word 10
        m.load_words(48, &[7, 8]).unwrap(); // words 12..13
        assert_eq!(m.dirty_words_since(g0), Some((4, 13)));
        // A fully-synced consumer sees nothing dirty.
        assert_eq!(m.dirty_words_since(m.generation()), None);
    }

    #[test]
    fn write_log_forgets_when_overflowed() {
        let mut m = Bram::new(4096).with_write_log();
        let g0 = m.generation();
        // Disjoint, non-mergeable writes past the log capacity.
        for i in 0..(WRITE_LOG_CAP as u32 + 2) {
            m.write_word(i * 64, i).unwrap();
        }
        assert_eq!(m.dirty_words_since(g0), None, "too far back: must demand a full resync");
        // But recent history is still exact.
        let g_late = m.generation() - 1;
        assert_eq!(
            m.dirty_words_since(g_late),
            Some(((WRITE_LOG_CAP as u32 + 1) * 16, (WRITE_LOG_CAP as u32 + 1) * 16))
        );
    }

    #[test]
    fn clear_dirties_everything() {
        let mut m = Bram::new(64).with_write_log();
        let g0 = m.generation();
        m.clear();
        assert_eq!(m.dirty_words_since(g0), Some((0, 15)));
    }

    #[test]
    fn freeze_shares_words_and_first_write_detaches() {
        let mut a = Bram::new(64).with_write_log();
        a.load_words(0, &[1, 2, 3]).unwrap();
        let generation = a.generation();
        let shared = a.freeze();
        assert!(a.is_shared(), "freeze leaves the source on the shared view");
        assert_eq!(a.read_word(0).unwrap(), 1, "reads are unchanged after freeze");

        let mut b = Bram::new(64).with_write_log();
        b.attach_shared(Arc::clone(&shared), generation);
        assert!(b.is_shared());
        assert_eq!(a, b);
        assert_eq!(b.generation(), generation);
        // Consumers synced before the attach must resync fully: the log
        // restarts at the adopted generation.
        assert_eq!(b.dirty_words_since(generation - 1), None);

        // First write detaches a private copy; the sibling and the
        // frozen image are untouched.
        b.write_word(0, 99).unwrap();
        assert!(!b.is_shared(), "a write must detach the shared view");
        assert_eq!(b.read_word(0).unwrap(), 99);
        assert_eq!(a.read_word(0).unwrap(), 1);
        assert_eq!(shared[0], 1);
        // The write is logged against the adopted generation.
        assert_eq!(b.dirty_words_since(generation), Some((0, 0)));
    }

    #[test]
    fn every_mutation_kind_detaches_a_shared_bram() {
        let mut src = Bram::new(64);
        src.write_word(0, 0xAABB_CCDD).unwrap();
        let generation = src.generation();
        let image = src.freeze();

        for mutate in [
            (|m: &mut Bram| m.write_word(0, 1).unwrap()) as fn(&mut Bram),
            |m| m.write(1, 0xEE, MemSize::Byte).unwrap(),
            |m| m.write(2, 0x1234, MemSize::Half).unwrap(),
            |m| m.load_words(0, &[7]).unwrap(),
            |m| m.clear(),
        ] {
            let mut b = Bram::new(64);
            b.attach_shared(Arc::clone(&image), generation);
            mutate(&mut b);
            assert!(!b.is_shared());
            assert_eq!(image[0], 0xAABB_CCDD, "the frozen image must never change");
        }
    }

    #[test]
    fn equality_ignores_generation() {
        let mut a = Bram::new(16);
        let b = Bram::new(16);
        a.write_word(0, 7).unwrap();
        a.write_word(0, 0).unwrap();
        assert_eq!(a, b, "same contents must compare equal despite mutations");
    }
}
