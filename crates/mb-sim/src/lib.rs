//! Cycle-approximate MicroBlaze system simulator.
//!
//! Models the system of Figure 1 in the DATE 2005 warp-processing paper: a
//! MicroBlaze-style CPU with Harvard local-memory buses to separate
//! instruction and data block RAMs, an on-chip peripheral bus (OPB) with
//! memory-mapped peripherals, and optional instruction/data caches.
//!
//! Timing follows the paper's 3-stage pipeline description: one-cycle ALU
//! operations, three-cycle multiplies, two-cycle loads/stores, and branch
//! latencies of one to three cycles depending on the branch kind, whether
//! it is taken, and whether its delay slot is used.
//!
//! The simulator produces instruction [`Trace`]s — the same information
//! the paper obtained from the Xilinx Microprocessor Debug Engine — which
//! feed the on-chip profiler model and the ARM baseline simulators.
//!
//! # Example
//!
//! ```
//! use mb_isa::{Assembler, Insn, Reg};
//! use mb_sim::{MbConfig, System};
//!
//! let mut a = Assembler::new(0);
//! a.li(Reg::R3, 10);
//! a.label("loop");
//! a.push(Insn::addik(Reg::R3, Reg::R3, -1));
//! a.bnei(Reg::R3, "loop");
//! // Exit via the MMIO exit port.
//! a.li(Reg::R4, mb_sim::EXIT_PORT_BASE as i32);
//! a.push(Insn::swi(Reg::R0, Reg::R4, 0));
//! let program = a.finish().unwrap();
//!
//! let mut sys = System::new(MbConfig::default());
//! sys.load_program(&program).unwrap();
//! let outcome = sys.run(100_000).unwrap();
//! assert!(outcome.exited());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod cache;
mod config;
mod cpu;
mod image;
mod lanes;
mod machine;
mod mem;
mod periph;
mod predecode;
mod sink;
mod stats;
mod timing;
mod trace;

pub use config::{MbConfig, MB_CLOCK_HZ};
pub use cpu::Cpu;
pub use image::ProgramImage;
pub use lanes::{LaneGroup, LOCKSTEP_ENGINE};
pub use machine::{Engine, Outcome, RunError, StopReason, System};
pub use mem::{Bram, MemError};
pub use periph::{BusResponse, ExitPort, Peripheral, EXIT_PORT_BASE, OPB_BASE};
pub use sink::{BlockRetire, NullSink, TraceSink, TraceSummary};
pub use stats::ExecStats;
pub use timing::{branch_latency, insn_latency};
pub use trace::{PcAggregates, Trace, TraceEvent};
