//! System configuration.

use mb_isa::MbFeatures;

use crate::cache::CacheConfig;

/// MicroBlaze clock frequency on the Spartan3 FPGA used in the paper.
pub const MB_CLOCK_HZ: u64 = 85_000_000;

/// Configuration of a simulated MicroBlaze system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MbConfig {
    /// Optional functional units (barrel shifter, multiplier, divider).
    pub features: MbFeatures,
    /// Core clock frequency in Hz (85 MHz on Spartan3 in the paper).
    pub clock_hz: u64,
    /// Instruction BRAM size in bytes.
    pub imem_bytes: u32,
    /// Data BRAM size in bytes.
    pub dmem_bytes: u32,
    /// Optional instruction cache (the paper's system uses local BRAM
    /// without caches; caches are provided for configurability studies).
    pub icache: Option<CacheConfig>,
    /// Optional data cache.
    pub dcache: Option<CacheConfig>,
    /// Whether fetch uses the pre-decoded instruction store (decode each
    /// imem word once into a side table, invalidated on imem writes).
    /// On by default; disabling it restores the decode-per-fetch
    /// reference loop, which the fast-path equivalence tests and the
    /// `simperf` harness use as their baseline. Simulated timing is
    /// identical either way — this only changes host-side speed.
    pub predecode: bool,
    /// Whether the run loop may retire fused straight-line superblocks
    /// in one dispatch instead of stepping instruction by instruction.
    /// On by default; it takes effect only with `predecode` on. The
    /// caches-on restriction is lifted: with i/d-caches configured the
    /// engine no longer silently downgrades to stepping — it retires
    /// the same fused ops with per-op budget checks and cache waits
    /// (see `System::active_engine`). Simulated timing, traces, and
    /// statistics are identical either way — this only changes
    /// host-side speed. `MbConfig::with_blocks(false)` restores the PR 3
    /// per-instruction predecoded loop.
    pub blocks: bool,
    /// Whether the block store may chain a superblock across a
    /// predicted-taken backward branch into a megablock loop trace with
    /// a guarded side exit: a hot loop body then iterates inside one
    /// dispatch instead of paying a dispatch per iteration. On by
    /// default; takes effect only with `blocks` on. Guard failure
    /// resumes at the exact architectural boundary, so simulated
    /// timing, traces, and statistics are identical either way.
    /// `MbConfig::with_traces(false)` restores the PR 5 one-block-per-
    /// dispatch engine.
    pub traces: bool,
}

impl MbConfig {
    /// The configuration used in the paper's experiments: 85 MHz, barrel
    /// shifter and multiplier included, no divider, local BRAM memories
    /// and no caches.
    #[must_use]
    pub fn paper_default() -> Self {
        MbConfig {
            features: MbFeatures::paper_default(),
            clock_hz: MB_CLOCK_HZ,
            imem_bytes: 64 * 1024,
            dmem_bytes: 64 * 1024,
            icache: None,
            dcache: None,
            predecode: true,
            blocks: true,
            traces: true,
        }
    }

    /// Returns a copy with the pre-decoded fetch path enabled or
    /// disabled.
    #[must_use]
    pub fn with_predecode(mut self, predecode: bool) -> Self {
        self.predecode = predecode;
        self
    }

    /// Returns a copy with the superblock execution engine enabled or
    /// disabled.
    #[must_use]
    pub fn with_blocks(mut self, blocks: bool) -> Self {
        self.blocks = blocks;
        self
    }

    /// Returns a copy with megablock loop-trace chaining enabled or
    /// disabled.
    #[must_use]
    pub fn with_traces(mut self, traces: bool) -> Self {
        self.traces = traces;
        self
    }

    /// Returns a copy with different functional units.
    #[must_use]
    pub fn with_features(mut self, features: MbFeatures) -> Self {
        self.features = features;
        self
    }

    /// Returns a copy with a different clock frequency.
    #[must_use]
    pub fn with_clock_hz(mut self, hz: u64) -> Self {
        self.clock_hz = hz;
        self
    }

    /// Seconds taken by `cycles` at this configuration's clock.
    #[must_use]
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

impl Default for MbConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4() {
        let c = MbConfig::paper_default();
        assert_eq!(c.clock_hz, 85_000_000);
        assert!(c.features.barrel_shifter);
        assert!(c.features.multiplier);
        assert!(!c.features.divider);
        assert!(c.icache.is_none() && c.dcache.is_none());
    }

    #[test]
    fn seconds_scale_with_clock() {
        let c = MbConfig::paper_default();
        let t = c.seconds(85_000_000);
        assert!((t - 1.0).abs() < 1e-12);
    }
}
