//! Instruction traces.
//!
//! The paper simulated each application with the Xilinx Microprocessor
//! Debug Engine to obtain an instruction trace, then replayed the trace
//! through the profiler and hardware models. [`Trace`] is our equivalent:
//! one [`TraceEvent`] per retired instruction.

use mb_isa::{Insn, OpClass};

/// One retired instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Byte address of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// Cycles this instruction cost (including branch penalties).
    pub cycles: u32,
    /// For branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For taken branches: the target address.
    pub target: Option<u32>,
    /// For loads/stores: the effective byte address.
    pub ea: Option<u32>,
}

impl TraceEvent {
    /// Whether this event is a taken backward branch (the loop-closing
    /// events the warp profiler counts).
    #[must_use]
    pub fn is_backward_taken_branch(&self) -> bool {
        self.taken == Some(true) && self.target.is_some_and(|t| t <= self.pc)
    }
}

/// A complete execution trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retired instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total cycles across all events.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.cycles)).sum()
    }

    /// Cycles spent in the half-open PC range `[start, end)` — used to
    /// attribute time to a kernel region.
    #[must_use]
    pub fn cycles_in_range(&self, start: u32, end: u32) -> u64 {
        self.events
            .iter()
            .filter(|e| e.pc >= start && e.pc < end)
            .map(|e| u64::from(e.cycles))
            .sum()
    }

    /// Instructions retired in the half-open PC range `[start, end)`.
    #[must_use]
    pub fn instructions_in_range(&self, start: u32, end: u32) -> u64 {
        self.events.iter().filter(|e| e.pc >= start && e.pc < end).count() as u64
    }

    /// Instruction-class histogram of the trace.
    #[must_use]
    pub fn class_histogram(&self) -> [u64; OpClass::ALL.len()] {
        let mut h = [0u64; OpClass::ALL.len()];
        for e in &self.events {
            h[e.insn.class().index()] += 1;
        }
        h
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Cond, Reg};

    fn ev(pc: u32, cycles: u32) -> TraceEvent {
        TraceEvent {
            pc,
            insn: Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            cycles,
            taken: None,
            target: None,
            ea: None,
        }
    }

    #[test]
    fn cycles_in_range_filters_by_pc() {
        let mut t = Trace::new();
        t.push(ev(0x00, 1));
        t.push(ev(0x10, 2));
        t.push(ev(0x20, 4));
        assert_eq!(t.cycles(), 7);
        assert_eq!(t.cycles_in_range(0x10, 0x20), 2);
        assert_eq!(t.instructions_in_range(0x00, 0x30), 3);
    }

    #[test]
    fn backward_branch_detection() {
        let branch = TraceEvent {
            pc: 0x40,
            insn: Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -16, delay: false },
            cycles: 2,
            taken: Some(true),
            target: Some(0x30),
            ea: None,
        };
        assert!(branch.is_backward_taken_branch());
        let fwd = TraceEvent { target: Some(0x50), ..branch };
        assert!(!fwd.is_backward_taken_branch());
        let not_taken = TraceEvent { taken: Some(false), target: None, ..branch };
        assert!(!not_taken.is_backward_taken_branch());
    }

    #[test]
    fn histogram_counts_classes() {
        let mut t = Trace::new();
        t.push(ev(0, 1));
        t.push(ev(4, 1));
        let h = t.class_histogram();
        assert_eq!(h[mb_isa::OpClass::Alu.index()], 2);
    }
}
