//! Instruction traces.
//!
//! The paper simulated each application with the Xilinx Microprocessor
//! Debug Engine to obtain an instruction trace, then replayed the trace
//! through the profiler and hardware models. [`Trace`] is our equivalent:
//! one [`TraceEvent`] per retired instruction.
//!
//! Aggregate queries ([`cycles_in_range`](Trace::cycles_in_range),
//! [`instructions_in_range`](Trace::instructions_in_range)) are answered
//! from a [`PcAggregates`] prefix-sum table built once per trace, so
//! consumers that attribute time to kernel regions pay O(1) per query
//! instead of a linear pass over the event vector. Consumers that need
//! only aggregates and never the events should not record a `Trace` at
//! all — see [`TraceSummary`](crate::TraceSummary).

use std::sync::OnceLock;

use mb_isa::{Insn, OpClass};

/// One retired instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Byte address of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// Cycles this instruction cost (including branch penalties).
    pub cycles: u32,
    /// For branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For taken branches: the target address.
    pub target: Option<u32>,
    /// For loads/stores: the effective byte address.
    pub ea: Option<u32>,
}

impl TraceEvent {
    /// Whether this event is a taken backward branch (the loop-closing
    /// events the warp profiler counts).
    #[must_use]
    pub fn is_backward_taken_branch(&self) -> bool {
        self.taken == Some(true) && self.target.is_some_and(|t| t <= self.pc)
    }
}

/// Per-PC prefix sums of cycles and retired instructions, answering
/// half-open PC-range queries in O(1).
///
/// Built once from a [`Trace`] (or the per-PC tables of a
/// [`TraceSummary`](crate::TraceSummary)); the table spans the word
/// range actually executed, so its size is proportional to the program,
/// not the trace length.
#[derive(Clone, Default, Debug)]
pub struct PcAggregates {
    /// Word index (`pc >> 2`) of the first covered instruction.
    base_word: usize,
    /// `prefix_cycles[i]` = cycles retired at word indices
    /// `[base_word, base_word + i)`. Length is covered words + 1.
    prefix_cycles: Vec<u64>,
    /// Same prefix layout for retired-instruction counts.
    prefix_insns: Vec<u64>,
}

impl PcAggregates {
    /// Builds the table from per-PC totals: `(first word index,
    /// cycles-per-word, instructions-per-word)`.
    #[must_use]
    pub fn from_tables(base_word: usize, cycles: &[u64], insns: &[u64]) -> Self {
        debug_assert_eq!(cycles.len(), insns.len());
        let mut prefix_cycles = Vec::with_capacity(cycles.len() + 1);
        let mut prefix_insns = Vec::with_capacity(insns.len() + 1);
        let (mut c, mut n) = (0u64, 0u64);
        prefix_cycles.push(0);
        prefix_insns.push(0);
        for i in 0..cycles.len() {
            c += cycles[i];
            n += insns[i];
            prefix_cycles.push(c);
            prefix_insns.push(n);
        }
        PcAggregates { base_word, prefix_cycles, prefix_insns }
    }

    /// Builds the table from a slice of trace events (one linear pass).
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let Some(min) = events.iter().map(|e| e.pc >> 2).min() else {
            return PcAggregates::default();
        };
        let max = events.iter().map(|e| e.pc >> 2).max().expect("non-empty");
        let words = (max - min + 1) as usize;
        let mut cycles = vec![0u64; words];
        let mut insns = vec![0u64; words];
        for e in events {
            let i = ((e.pc >> 2) - min) as usize;
            cycles[i] += u64::from(e.cycles);
            insns[i] += 1;
        }
        PcAggregates::from_tables(min as usize, &cycles, &insns)
    }

    /// Converts a half-open byte range `[start, end)` into clamped prefix
    /// indices.
    fn clamp(&self, start: u32, end: u32) -> (usize, usize) {
        let words = self.prefix_cycles.len() - 1;
        // An instruction at word w (pc = 4w) lies in [start, end) iff
        // w >= ceil(start/4) and w < ceil(end/4).
        let lo = u64::from(start).div_ceil(4) as usize;
        let hi = u64::from(end).div_ceil(4) as usize;
        let lo = lo.saturating_sub(self.base_word).min(words);
        let hi = hi.saturating_sub(self.base_word).min(words);
        (lo, hi.max(lo))
    }

    /// Cycles retired in the half-open PC range `[start, end)`.
    #[must_use]
    pub fn cycles_in_range(&self, start: u32, end: u32) -> u64 {
        if self.prefix_cycles.len() <= 1 {
            return 0;
        }
        let (lo, hi) = self.clamp(start, end);
        self.prefix_cycles[hi] - self.prefix_cycles[lo]
    }

    /// Instructions retired in the half-open PC range `[start, end)`.
    #[must_use]
    pub fn instructions_in_range(&self, start: u32, end: u32) -> u64 {
        if self.prefix_insns.len() <= 1 {
            return 0;
        }
        let (lo, hi) = self.clamp(start, end);
        self.prefix_insns[hi] - self.prefix_insns[lo]
    }
}

/// A complete execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    total_cycles: u64,
    /// Prefix-sum table, built lazily on the first range query and
    /// discarded whenever the trace grows.
    aggregates: OnceLock<PcAggregates>,
}

/// Equality compares the recorded events; the cycle total and the
/// aggregate table are derived.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.total_cycles += u64::from(event.cycles);
        self.aggregates.take();
        self.events.push(event);
    }

    /// The recorded events in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retired instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total cycles across all events (maintained incrementally; O(1)).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The per-PC prefix-sum table for this trace, built on first use.
    pub fn aggregates(&self) -> &PcAggregates {
        self.aggregates.get_or_init(|| PcAggregates::from_events(&self.events))
    }

    /// Cycles spent in the half-open PC range `[start, end)` — used to
    /// attribute time to a kernel region. O(1) after the first query.
    #[must_use]
    pub fn cycles_in_range(&self, start: u32, end: u32) -> u64 {
        self.aggregates().cycles_in_range(start, end)
    }

    /// Instructions retired in the half-open PC range `[start, end)`.
    /// O(1) after the first query.
    #[must_use]
    pub fn instructions_in_range(&self, start: u32, end: u32) -> u64 {
        self.aggregates().instructions_in_range(start, end)
    }

    /// Instruction-class histogram of the trace.
    #[must_use]
    pub fn class_histogram(&self) -> [u64; OpClass::ALL.len()] {
        let mut h = [0u64; OpClass::ALL.len()];
        for e in &self.events {
            h[e.insn.class().index()] += 1;
        }
        h
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Cond, Reg};

    fn ev(pc: u32, cycles: u32) -> TraceEvent {
        TraceEvent {
            pc,
            insn: Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            cycles,
            taken: None,
            target: None,
            ea: None,
        }
    }

    #[test]
    fn cycles_in_range_filters_by_pc() {
        let mut t = Trace::new();
        t.push(ev(0x00, 1));
        t.push(ev(0x10, 2));
        t.push(ev(0x20, 4));
        assert_eq!(t.cycles(), 7);
        assert_eq!(t.cycles_in_range(0x10, 0x20), 2);
        assert_eq!(t.instructions_in_range(0x00, 0x30), 3);
    }

    #[test]
    fn range_queries_match_linear_scan() {
        let mut t = Trace::new();
        for (pc, c) in [(0x40, 1), (0x44, 2), (0x48, 2), (0x44, 3), (0x100, 5)] {
            t.push(ev(pc, c));
        }
        for (start, end) in
            [(0, 0x200), (0x44, 0x48), (0x44, 0x4C), (0x50, 0x100), (0x50, 0x104), (0x48, 0x48)]
        {
            let cycles: u64 =
                t.iter().filter(|e| e.pc >= start && e.pc < end).map(|e| u64::from(e.cycles)).sum();
            let insns = t.iter().filter(|e| e.pc >= start && e.pc < end).count() as u64;
            assert_eq!(t.cycles_in_range(start, end), cycles, "cycles [{start:#x},{end:#x})");
            assert_eq!(t.instructions_in_range(start, end), insns, "insns [{start:#x},{end:#x})");
        }
    }

    #[test]
    fn aggregates_rebuild_after_push() {
        let mut t = Trace::new();
        t.push(ev(0x10, 2));
        assert_eq!(t.cycles_in_range(0, 0x100), 2);
        // A push after a query must invalidate the prefix table.
        t.push(ev(0x20, 4));
        assert_eq!(t.cycles_in_range(0, 0x100), 6);
        assert_eq!(t.instructions_in_range(0x14, 0x24), 1);
    }

    #[test]
    fn empty_trace_ranges_are_zero() {
        let t = Trace::new();
        assert_eq!(t.cycles_in_range(0, u32::MAX), 0);
        assert_eq!(t.instructions_in_range(0, u32::MAX), 0);
        assert_eq!(t.cycles(), 0);
    }

    #[test]
    fn unaligned_range_bounds_clamp_like_the_filter() {
        let mut t = Trace::new();
        t.push(ev(0x10, 1));
        // start just past the pc excludes it; end just past includes it.
        assert_eq!(t.cycles_in_range(0x11, 0x20), 0);
        assert_eq!(t.cycles_in_range(0x0D, 0x11), 1);
    }

    #[test]
    fn backward_branch_detection() {
        let branch = TraceEvent {
            pc: 0x40,
            insn: Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -16, delay: false },
            cycles: 2,
            taken: Some(true),
            target: Some(0x30),
            ea: None,
        };
        assert!(branch.is_backward_taken_branch());
        let fwd = TraceEvent { target: Some(0x50), ..branch };
        assert!(!fwd.is_backward_taken_branch());
        let not_taken = TraceEvent { taken: Some(false), target: None, ..branch };
        assert!(!not_taken.is_backward_taken_branch());
    }

    #[test]
    fn histogram_counts_classes() {
        let mut t = Trace::new();
        t.push(ev(0, 1));
        t.push(ev(4, 1));
        let h = t.class_histogram();
        assert_eq!(h[mb_isa::OpClass::Alu.index()], 2);
    }
}
