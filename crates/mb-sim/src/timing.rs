//! Pipeline timing model.
//!
//! Latencies follow Section 2 of the paper: the MicroBlaze has a
//! three-stage pipeline where instructions have one- to three-cycle
//! execute latencies. Addition takes one cycle, multiplication three;
//! loads and stores take two (local memory bus); branch latency depends
//! on the branch kind, whether it is taken, and whether its delay slot is
//! used — "most branch instructions had a latency of two cycles, as the
//! compiler often did not utilize the branch delay slot".

use mb_isa::{Insn, OpClass};

/// Cycles for a non-branch instruction.
#[must_use]
pub fn insn_latency(insn: &Insn) -> u32 {
    match insn.class() {
        OpClass::Alu => 1,
        OpClass::BarrelShift => 2,
        OpClass::Mul => 3,
        OpClass::Div => 34,
        OpClass::Load | OpClass::Store => 2,
        OpClass::ImmPrefix => 1,
        // Use `branch_latency` for branches; treat a bare query as
        // not-taken.
        OpClass::Branch => 1,
    }
}

/// Cycles for a branch given its runtime outcome.
///
/// * not taken: 1 cycle;
/// * taken immediate-target branch: 2 cycles, or 1 with a delay slot
///   (the slot instruction is charged separately as itself);
/// * taken register-target branch (`br`, `rtsd`): 3 cycles, or 2 with a
///   delay slot.
#[must_use]
pub fn branch_latency(insn: &Insn, taken: bool) -> u32 {
    if !taken {
        return 1;
    }
    match insn {
        Insn::Bri { delay, .. } | Insn::Bci { delay, .. } | Insn::Bc { delay, .. } => {
            if *delay {
                1
            } else {
                2
            }
        }
        Insn::Br { delay, .. } => {
            if *delay {
                2
            } else {
                3
            }
        }
        Insn::Rtsd { .. } => 2, // mandatory delay slot
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Cond, Reg};

    #[test]
    fn alu_is_single_cycle() {
        assert_eq!(insn_latency(&Insn::addk(Reg::R1, Reg::R2, Reg::R3)), 1);
    }

    #[test]
    fn mul_is_three_cycles() {
        assert_eq!(insn_latency(&Insn::mul(Reg::R1, Reg::R2, Reg::R3)), 3);
    }

    #[test]
    fn loads_and_stores_cost_two() {
        assert_eq!(insn_latency(&Insn::lwi(Reg::R1, Reg::R2, 0)), 2);
        assert_eq!(insn_latency(&Insn::swi(Reg::R1, Reg::R2, 0)), 2);
    }

    #[test]
    fn divider_is_many_cycles() {
        let idiv = Insn::Idiv { rd: Reg::R1, ra: Reg::R2, rb: Reg::R3, unsigned: false };
        assert_eq!(insn_latency(&idiv), 34);
    }

    #[test]
    fn branch_latencies_match_paper() {
        let bnei = Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: false };
        assert_eq!(branch_latency(&bnei, false), 1);
        assert_eq!(branch_latency(&bnei, true), 2); // the common case
        let bneid = Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: true };
        assert_eq!(branch_latency(&bneid, true), 1);
        let br = Insn::Br { rd: Reg::R0, rb: Reg::R5, link: false, absolute: false, delay: false };
        assert_eq!(branch_latency(&br, true), 3);
        assert_eq!(branch_latency(&Insn::ret(), true), 2);
    }
}
