//! Zero-cost trace sinks.
//!
//! [`System::step`](crate::System::step) and the run loops are generic
//! over a [`TraceSink`], so the tracing policy is chosen at compile time
//! and monomorphized into the step loop:
//!
//! * [`NullSink`] — records nothing; the sink call compiles away and an
//!   untraced run pays zero tracing cost;
//! * [`Trace`] — records every event; byte-for-byte the historical
//!   full-trace behavior;
//! * [`TraceSummary`] — streams each event into per-PC aggregate tables
//!   without ever materializing the event vector, for consumers that
//!   only need region/class aggregates (the decompilation-driven
//!   partitioning flow needs region totals, not raw events).
//!
//! Any `&mut` sink is itself a sink, so a sink can be threaded through
//! helper code without moving it.

use mb_isa::OpClass;

use crate::trace::{PcAggregates, Trace, TraceEvent};

/// One fully-retired straight-line block, as delivered to
/// [`TraceSink::retire_block`].
///
/// A block contains no control flow (branches and their delay slots
/// always retire through [`System::step`](crate::System::step) and
/// arrive via [`TraceSink::record`]), so every instruction here is
/// sequential from [`head`](BlockRetire::head) and none is a taken
/// branch. The aggregate fields let batched sinks update their tables
/// without walking events; [`events`](BlockRetire::events) carries the
/// per-instruction stream only for sinks whose
/// [`WANTS_EVENTS`](TraceSink::WANTS_EVENTS) is `true` (it is empty
/// otherwise — the engine skips synthesizing events the sink declared
/// it will not read).
#[derive(Debug)]
pub struct BlockRetire<'a> {
    /// PC of the block's first instruction; instruction `i` retired at
    /// `head + 4 * i`.
    pub head: u32,
    /// Retired instruction count.
    pub instructions: u32,
    /// Total cycles consumed by the block.
    pub cycles: u64,
    /// Per-class retired-instruction deltas, indexed by
    /// [`OpClass::index`].
    pub class_insns: &'a [u32; OpClass::ALL.len()],
    /// Per-instruction cycle costs, in retirement order.
    pub insn_cycles: &'a [u32],
    /// The per-instruction events — populated only when the sink's
    /// [`WANTS_EVENTS`](TraceSink::WANTS_EVENTS) is `true`.
    pub events: &'a [TraceEvent],
}

/// Consumer of retired-instruction events.
///
/// Implementations must be cheap: `record` is called once per retired
/// instruction on the simulator's hottest path (the step engine, block
/// tails, and partially-retired blocks); `retire_block` is called once
/// per fully-retired superblock.
pub trait TraceSink {
    /// Whether this sink reads per-instruction [`TraceEvent`]s for
    /// block retirements. Sinks that only need aggregates override this
    /// to `false` and get a [`BlockRetire`] with an empty event slice —
    /// the block engine then skips synthesizing events entirely, which
    /// is where the batched dispatch wins its throughput.
    const WANTS_EVENTS: bool = true;

    /// Whether [`record`](TraceSink::record) observes anything at all.
    /// Sinks that discard every event override this to `false`, letting
    /// the block engine skip bookkeeping whose only consumer is a
    /// flush-path `record` call — e.g. remembering load/store effective
    /// addresses so a fault or OPB exit can replay the retired prefix.
    const WANTS_RECORDS: bool = true;

    /// Observes one retired instruction.
    fn record(&mut self, event: &TraceEvent);

    /// Observes one fully-retired straight-line block.
    ///
    /// The default implementation loops [`record`](TraceSink::record)
    /// over the block's events, so event-consuming sinks ([`Trace`])
    /// see a stream bit-identical to per-instruction execution.
    #[inline]
    fn retire_block(&mut self, block: &BlockRetire<'_>) {
        for event in block.events {
            self.record(event);
        }
    }
}

/// The no-op sink: an untraced run.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    const WANTS_EVENTS: bool = false;
    const WANTS_RECORDS: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &TraceEvent) {}

    #[inline(always)]
    fn retire_block(&mut self, _block: &BlockRetire<'_>) {}
}

impl TraceSink for Trace {
    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        self.push(*event);
    }
}

impl<S: TraceSink> TraceSink for &mut S {
    const WANTS_EVENTS: bool = S::WANTS_EVENTS;
    const WANTS_RECORDS: bool = S::WANTS_RECORDS;

    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event);
    }

    #[inline]
    fn retire_block(&mut self, block: &BlockRetire<'_>) {
        (**self).retire_block(block);
    }
}

/// Streaming aggregate sink: per-PC cycle/instruction totals, the
/// instruction-class histogram, and backward-taken-branch counts,
/// accumulated online in O(program) memory regardless of trace length.
///
/// A summary answers every aggregate query a [`Trace`] can — and
/// produces identical numbers, which `tests/sim_fast_path.rs` locks in —
/// without the per-event heap traffic of recording the full trace.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Cycles retired per word index (`pc >> 2`), grown on demand.
    cycles_by_pc: Vec<u64>,
    /// Instructions retired per word index.
    insns_by_pc: Vec<u64>,
    /// Taken backward branches per word index (of the branch itself).
    backward_by_pc: Vec<u64>,
    class_hist: [u64; OpClass::ALL.len()],
    instructions: u64,
    cycles: u64,
    branches_taken: u64,
    branches_not_taken: u64,
    backward_taken: u64,
}

impl TraceSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        TraceSummary::default()
    }

    /// Builds the summary of an already-recorded trace (for equivalence
    /// checks; live runs should sink directly into a summary instead).
    #[must_use]
    pub fn of_trace(trace: &Trace) -> Self {
        let mut s = TraceSummary::new();
        for e in trace {
            s.record(e);
        }
        s
    }

    fn slot(&mut self, pc: u32) -> usize {
        let idx = (pc >> 2) as usize;
        if idx >= self.cycles_by_pc.len() {
            self.cycles_by_pc.resize(idx + 1, 0);
            self.insns_by_pc.resize(idx + 1, 0);
            self.backward_by_pc.resize(idx + 1, 0);
        }
        idx
    }

    /// Total retired instructions.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.instructions
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions == 0
    }

    /// Total cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Taken branches observed.
    #[must_use]
    pub fn branches_taken(&self) -> u64 {
        self.branches_taken
    }

    /// Not-taken branches observed.
    #[must_use]
    pub fn branches_not_taken(&self) -> u64 {
        self.branches_not_taken
    }

    /// Taken backward branches observed (the profiler's loop events).
    #[must_use]
    pub fn backward_taken(&self) -> u64 {
        self.backward_taken
    }

    /// Taken backward branches whose branch instruction sits at `pc`.
    #[must_use]
    pub fn backward_taken_at(&self, pc: u32) -> u64 {
        self.backward_by_pc.get((pc >> 2) as usize).copied().unwrap_or(0)
    }

    /// Instruction-class histogram.
    #[must_use]
    pub fn class_histogram(&self) -> [u64; OpClass::ALL.len()] {
        self.class_hist
    }

    /// Cycles retired in the half-open PC range `[start, end)`.
    #[must_use]
    pub fn cycles_in_range(&self, start: u32, end: u32) -> u64 {
        Self::range_sum(&self.cycles_by_pc, start, end)
    }

    /// Instructions retired in the half-open PC range `[start, end)`.
    #[must_use]
    pub fn instructions_in_range(&self, start: u32, end: u32) -> u64 {
        Self::range_sum(&self.insns_by_pc, start, end)
    }

    fn range_sum(table: &[u64], start: u32, end: u32) -> u64 {
        let lo = (u64::from(start).div_ceil(4) as usize).min(table.len());
        let hi = (u64::from(end).div_ceil(4) as usize).min(table.len());
        table[lo..hi.max(lo)].iter().sum()
    }

    /// Converts the per-PC tables into the O(1) prefix-sum form shared
    /// with [`Trace::aggregates`].
    #[must_use]
    pub fn aggregates(&self) -> PcAggregates {
        PcAggregates::from_tables(0, &self.cycles_by_pc, &self.insns_by_pc)
    }
}

impl TraceSink for TraceSummary {
    const WANTS_EVENTS: bool = false;

    /// Batched block retirement: straight-line blocks carry no branch
    /// events, so the whole update is per-PC adds from the precomputed
    /// cycle vector plus O(classes) histogram arithmetic — no events
    /// are synthesized or walked.
    fn retire_block(&mut self, block: &BlockRetire<'_>) {
        let n = block.instructions as usize;
        if n == 0 {
            return;
        }
        let base = self.slot(block.head + 4 * (n as u32 - 1)) + 1 - n;
        for (i, &c) in block.insn_cycles.iter().enumerate() {
            self.cycles_by_pc[base + i] += u64::from(c);
            self.insns_by_pc[base + i] += 1;
        }
        for (h, &d) in self.class_hist.iter_mut().zip(block.class_insns) {
            *h += u64::from(d);
        }
        self.instructions += u64::from(block.instructions);
        self.cycles += block.cycles;
    }

    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        let idx = self.slot(event.pc);
        self.cycles_by_pc[idx] += u64::from(event.cycles);
        self.insns_by_pc[idx] += 1;
        self.class_hist[event.insn.class().index()] += 1;
        self.instructions += 1;
        self.cycles += u64::from(event.cycles);
        match event.taken {
            Some(true) => {
                self.branches_taken += 1;
                if event.target.is_some_and(|t| t <= event.pc) {
                    self.backward_by_pc[idx] += 1;
                    self.backward_taken += 1;
                }
            }
            Some(false) => self.branches_not_taken += 1,
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Cond, Insn, Reg};

    fn ev(pc: u32, cycles: u32) -> TraceEvent {
        TraceEvent {
            pc,
            insn: Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            cycles,
            taken: None,
            target: None,
            ea: None,
        }
    }

    fn branch(pc: u32, target: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            pc,
            insn: Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: false },
            cycles: 2,
            taken: Some(taken),
            target: taken.then_some(target),
            ea: None,
        }
    }

    #[test]
    fn summary_matches_full_trace_aggregates() {
        let mut trace = Trace::new();
        for e in [ev(0x10, 1), ev(0x14, 2), branch(0x18, 0x10, true), branch(0x18, 0, false)] {
            trace.push(e);
        }
        let summary = TraceSummary::of_trace(&trace);
        assert_eq!(summary.len(), trace.len() as u64);
        assert_eq!(summary.cycles(), trace.cycles());
        assert_eq!(summary.class_histogram(), trace.class_histogram());
        assert_eq!(summary.cycles_in_range(0x10, 0x18), trace.cycles_in_range(0x10, 0x18));
        assert_eq!(
            summary.instructions_in_range(0x14, 0x1C),
            trace.instructions_in_range(0x14, 0x1C)
        );
        assert_eq!(
            summary.backward_taken(),
            trace.iter().filter(|e| e.is_backward_taken_branch()).count() as u64
        );
        assert_eq!(summary.backward_taken_at(0x18), 1);
        assert_eq!(summary.backward_taken_at(0x10), 0);
        assert_eq!(summary.branches_taken(), 1);
        assert_eq!(summary.branches_not_taken(), 1);
    }

    #[test]
    fn aggregates_form_matches_direct_queries() {
        let mut s = TraceSummary::new();
        for e in [ev(0x40, 3), ev(0x48, 1), ev(0x40, 3)] {
            s.record(&e);
        }
        let agg = s.aggregates();
        for (start, end) in [(0, 0x100), (0x40, 0x44), (0x44, 0x4C), (0x48, 0x48)] {
            assert_eq!(agg.cycles_in_range(start, end), s.cycles_in_range(start, end));
            assert_eq!(agg.instructions_in_range(start, end), s.instructions_in_range(start, end));
        }
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut sink = NullSink;
        sink.record(&ev(0, 1));
    }

    #[test]
    fn batched_block_retirement_equals_per_event_recording() {
        // Two ALU ops at 0x40/0x44 costing 1 and 3 cycles.
        let events = [ev(0x40, 1), ev(0x44, 3)];
        let mut class_insns = [0u32; OpClass::ALL.len()];
        class_insns[OpClass::Alu.index()] = 2;
        let block = BlockRetire {
            head: 0x40,
            instructions: 2,
            cycles: 4,
            class_insns: &class_insns,
            insn_cycles: &[1, 3],
            events: &[],
        };

        let mut batched = TraceSummary::new();
        batched.retire_block(&block);
        let mut per_event = TraceSummary::new();
        for e in &events {
            per_event.record(e);
        }
        assert_eq!(batched, per_event, "batched and per-event summaries must be identical");

        // The default impl (an events-wanting sink) replays the events.
        let mut trace = Trace::new();
        trace.retire_block(&BlockRetire { events: &events, ..block });
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.cycles(), 4);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut s = TraceSummary::new();
        {
            let mut r = &mut s;
            TraceSink::record(&mut r, &ev(0, 1));
        }
        assert_eq!(s.len(), 1);
    }
}
