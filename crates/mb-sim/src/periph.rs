//! On-chip peripheral bus (OPB) and peripherals.

use crate::Bram;

/// Base address of the OPB peripheral window.
///
/// Data addresses below this go to the data BRAM over the local memory
/// bus; addresses at or above it are routed to peripherals.
pub const OPB_BASE: u32 = 0x8000_0000;

/// Address of the exit port peripheral: a word store to this address
/// halts the simulated system with the stored value as exit code.
pub const EXIT_PORT_BASE: u32 = 0x8000_0000;

/// Result of an OPB read: the value and the bus wait cycles consumed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusResponse {
    /// Value returned to the CPU.
    pub value: u32,
    /// Wait cycles beyond the base load/store latency. A peripheral that
    /// stalls the processor (e.g. the WCLA while hardware executes)
    /// returns the full stall here.
    pub wait: u32,
}

impl BusResponse {
    /// A zero-wait response.
    #[must_use]
    pub fn immediate(value: u32) -> Self {
        BusResponse { value, wait: 0 }
    }
}

/// A memory-mapped OPB peripheral.
///
/// Peripherals receive mutable access to the data BRAM on every call,
/// modelling the dual-ported BRAM of the paper's warp system (the WCLA's
/// data address generator reads and writes application data directly).
///
/// Peripherals are `Send`: a [`System`](crate::System) with its mapped
/// peripherals is an owned, movable session — a long-running host (the
/// `warp-serve` scheduler) migrates sessions between worker threads at
/// slice boundaries, so nothing behind the bus may be thread-pinned.
pub trait Peripheral: Send {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Handles a word read at a byte offset within the peripheral window.
    fn read(&mut self, offset: u32, dmem: &mut Bram) -> BusResponse;

    /// Handles a word write; returns wait cycles.
    fn write(&mut self, offset: u32, value: u32, dmem: &mut Bram) -> u32;

    /// If the peripheral has requested a system halt, its exit code.
    fn exit_request(&self) -> Option<u32> {
        None
    }

    /// Restores power-on state, so a pooled [`System`](crate::System)
    /// can be recycled for a fresh run without remapping its
    /// peripherals. Stateless peripherals need not implement it.
    fn reset(&mut self) {}
}

/// The exit port: writing a word halts the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExitPort {
    code: Option<u32>,
}

impl ExitPort {
    /// Creates an exit port that has not yet been triggered.
    #[must_use]
    pub fn new() -> Self {
        ExitPort::default()
    }
}

impl Peripheral for ExitPort {
    fn name(&self) -> &str {
        "exit-port"
    }

    fn read(&mut self, _offset: u32, _dmem: &mut Bram) -> BusResponse {
        BusResponse::immediate(self.code.unwrap_or(0))
    }

    fn write(&mut self, _offset: u32, value: u32, _dmem: &mut Bram) -> u32 {
        self.code = Some(value);
        0
    }

    fn exit_request(&self) -> Option<u32> {
        self.code
    }

    fn reset(&mut self) {
        self.code = None;
    }
}

/// A registered peripheral and its address window.
pub(crate) struct Mapping {
    pub base: u32,
    pub size: u32,
    pub dev: Box<dyn Peripheral>,
}

/// The OPB bus: routes CPU accesses at or above [`OPB_BASE`] to
/// registered peripherals.
#[derive(Default)]
pub(crate) struct OpbBus {
    pub mappings: Vec<Mapping>,
}

impl OpbBus {
    pub fn map(&mut self, base: u32, size: u32, dev: Box<dyn Peripheral>) {
        self.mappings.push(Mapping { base, size, dev });
    }

    pub fn find(&mut self, addr: u32) -> Option<(&mut Mapping, u32)> {
        for m in &mut self.mappings {
            if addr >= m.base && addr < m.base + m.size {
                let off = addr - m.base;
                return Some((m, off));
            }
        }
        None
    }

    pub fn exit_request(&self) -> Option<u32> {
        self.mappings.iter().find_map(|m| m.dev.exit_request())
    }

    /// Resets every mapped peripheral to power-on state (pool recycling).
    pub fn reset_all(&mut self) {
        for m in &mut self.mappings {
            m.dev.reset();
        }
    }

    /// Removes the peripheral mapped at `base`, if any. Recycled systems
    /// unmap the previous session's devices before mapping their own —
    /// [`find`](OpbBus::find) returns the first match, so a stale
    /// mapping would shadow the replacement.
    pub fn unmap(&mut self, base: u32) {
        self.mappings.retain(|m| m.base != base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_port_latches_code() {
        let mut p = ExitPort::new();
        let mut dmem = Bram::new(16);
        assert_eq!(p.exit_request(), None);
        p.write(0, 42, &mut dmem);
        assert_eq!(p.exit_request(), Some(42));
        assert_eq!(p.read(0, &mut dmem).value, 42);
    }

    #[test]
    fn reset_clears_the_exit_latch_and_unmap_removes_devices() {
        let mut bus = OpbBus::default();
        bus.map(OPB_BASE, 16, Box::new(ExitPort::new()));
        let mut dmem = Bram::new(16);
        bus.find(OPB_BASE).unwrap().0.dev.write(0, 7, &mut dmem);
        assert_eq!(bus.exit_request(), Some(7));
        bus.reset_all();
        assert_eq!(bus.exit_request(), None, "reset must clear the exit latch");

        bus.map(OPB_BASE + 16, 16, Box::new(ExitPort::new()));
        bus.unmap(OPB_BASE + 16);
        assert!(bus.find(OPB_BASE + 16).is_none());
        assert!(bus.find(OPB_BASE).is_some(), "unmap removes only the named base");
    }

    #[test]
    fn bus_routes_by_address() {
        let mut bus = OpbBus::default();
        bus.map(OPB_BASE, 16, Box::new(ExitPort::new()));
        assert!(bus.find(OPB_BASE + 4).is_some());
        assert!(bus.find(OPB_BASE + 16).is_none());
        assert!(bus.find(0).is_none());
    }
}
