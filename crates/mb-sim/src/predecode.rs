//! Pre-decoded instruction store.
//!
//! The simulator's original fetch re-decoded the instruction word at
//! every retirement, even though a program's imem words change only when
//! the dynamic partitioning module patches the binary. This side table
//! prepares each word once into a [`Predecoded`] slot indexed by
//! `pc >> 2`; after the first execution of a PC, fetch is an array load.
//!
//! A slot holds not just the decoded [`Insn`] but everything `step`
//! needs that is a pure function of the instruction word and the
//! system's fixed feature set: the timing-model latencies for both
//! branch outcomes, the instruction class, functional-unit support, and
//! the control-flow flag — so the hot loop re-derives none of them.
//!
//! Invalidation rides on [`Bram::generation`]: every imem write (the
//! WCLA patch path goes through [`System::imem_mut`]) bumps the
//! generation, and the next fetch notices the mismatch. When the BRAM
//! carries a write log ([`Bram::dirty_words_since`] — the simulator's
//! instruction BRAM does), only the slots overlapping the dirtied word
//! range are discarded and the rest of the table stays hot; without a
//! log (or when the log has forgotten that far back) the whole table is
//! flushed and refills lazily.
//!
//! [`System::imem_mut`]: crate::System::imem_mut

use std::sync::Arc;

use mb_isa::{decode, Insn, MbFeatures, OpClass};

use crate::machine::RunError;
use crate::timing::{branch_latency, insn_latency};
use crate::Bram;

/// One instruction, fully prepared for execution.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Predecoded {
    /// The decoded instruction.
    pub insn: Insn,
    /// Coarse class (for statistics and histograms).
    pub class: OpClass,
    /// Execute cycles when a branch is taken; [`insn_latency`] for
    /// non-branches.
    pub lat_taken: u32,
    /// Execute cycles when a branch is not taken; [`insn_latency`] for
    /// non-branches.
    pub lat_not_taken: u32,
    /// Whether the configured functional units can execute it.
    pub supported: bool,
    /// Whether it is a control-flow instruction (illegal in delay slots).
    pub control_flow: bool,
}

impl Predecoded {
    /// Prepares an instruction against a fixed feature configuration.
    pub fn prepare(insn: Insn, features: &MbFeatures) -> Self {
        Predecoded {
            insn,
            class: insn.class(),
            lat_taken: branch_latency(&insn, true).max(insn_latency(&insn)),
            lat_not_taken: insn_latency(&insn),
            supported: features.supports(&insn),
            control_flow: insn.is_control_flow(),
        }
    }
}

/// The decode table's slot storage: privately owned, or a read-only
/// view into a fully-prepared table shared with sibling systems (a
/// frozen [`ProgramImage`](crate::ProgramImage)). Mirrors the CoW shape
/// of [`Bram`]'s word storage: one branch on the slow path, detach on
/// first mutation.
#[derive(Clone, Debug)]
enum Slots {
    Owned(Vec<Option<Predecoded>>),
    Shared(Arc<Vec<Option<Predecoded>>>),
}

impl Slots {
    #[inline]
    fn as_slice(&self) -> &[Option<Predecoded>] {
        match self {
            Slots::Owned(v) => v,
            Slots::Shared(a) => a,
        }
    }

    #[inline]
    fn make_owned(&mut self) -> &mut Vec<Option<Predecoded>> {
        if let Slots::Shared(a) = self {
            *self = Slots::Owned(a.as_ref().clone());
        }
        match self {
            Slots::Owned(v) => v,
            Slots::Shared(_) => unreachable!("just detached"),
        }
    }
}

/// Lazily-filled decode side table for one instruction BRAM.
#[derive(Clone, Debug)]
pub(crate) struct DecodeCache {
    /// One slot per imem word; `None` = not prepared yet.
    slots: Slots,
    /// The [`Bram::generation`] the slots were decoded against.
    generation: u64,
    /// Slow-path decodes performed (observability for the incremental
    /// invalidation tests: a patch must not force re-decoding the whole
    /// program).
    pub(crate) prepared: u64,
}

impl DecodeCache {
    /// Creates an empty cache that syncs to the BRAM on first fetch.
    pub fn new() -> Self {
        // u64::MAX can never equal a real generation (they start at 0 and
        // increment), so the first fetch always syncs.
        DecodeCache { slots: Slots::Owned(Vec::new()), generation: u64::MAX, prepared: 0 }
    }

    /// Brings the table fully in sync with `imem` (normally lazy on the
    /// next fetch) — the pre-freeze step of an image capture.
    pub fn sync(&mut self, imem: &Bram) {
        if self.generation != imem.generation() {
            self.resync(imem);
        }
    }

    /// Freezes the prepared slots into a shareable read-only table and
    /// switches this cache to the shared view (see [`Bram::freeze`]).
    pub fn freeze(&mut self) -> Arc<Vec<Option<Predecoded>>> {
        if let Slots::Owned(v) = &mut self.slots {
            self.slots = Slots::Shared(Arc::new(std::mem::take(v)));
        }
        match &self.slots {
            Slots::Shared(a) => Arc::clone(a),
            Slots::Owned(_) => unreachable!("just frozen"),
        }
    }

    /// Replaces the table with a shared fully-prepared one captured at
    /// `generation` (against the same program words this cache's BRAM
    /// now holds). The next mutation — a resync after a patch, or a
    /// slow-path decode of an unprepared word — detaches a private copy.
    pub fn attach_shared(&mut self, slots: Arc<Vec<Option<Predecoded>>>, generation: u64) {
        self.slots = Slots::Shared(slots);
        self.generation = generation;
    }

    /// Fetches the prepared instruction at `pc`, decoding and caching on
    /// the first visit and re-syncing whenever the BRAM has been written.
    #[inline]
    pub fn fetch(
        &mut self,
        imem: &Bram,
        features: &MbFeatures,
        pc: u32,
    ) -> Result<Predecoded, RunError> {
        if self.generation == imem.generation() && pc & 3 == 0 {
            if let Some(Some(d)) = self.slots.as_slice().get((pc >> 2) as usize) {
                return Ok(*d);
            }
        }
        self.fetch_slow(imem, features, pc)
    }

    /// Re-syncs to the BRAM after a mutation: incrementally when the
    /// write log can bound the dirtied words, wholesale otherwise.
    /// Detaches a shared table first — a resync only happens after the
    /// BRAM was written, i.e. this system diverged from the image.
    fn resync(&mut self, imem: &Bram) {
        let words = imem.words().len();
        let dirty = if self.slots.as_slice().len() == words {
            imem.dirty_words_since(self.generation)
        } else {
            None // first sync or a resized BRAM: nothing reusable
        };
        let slots = self.slots.make_owned();
        match dirty {
            Some((lo, hi)) => {
                let hi = (hi as usize).min(words - 1);
                slots[lo as usize..=hi].fill(None);
            }
            None => {
                slots.clear();
                slots.resize(words, None);
            }
        }
        self.generation = imem.generation();
    }

    #[cold]
    fn fetch_slow(
        &mut self,
        imem: &Bram,
        features: &MbFeatures,
        pc: u32,
    ) -> Result<Predecoded, RunError> {
        if self.generation != imem.generation() {
            self.resync(imem);
        }
        let word = imem.read_word(pc).map_err(|err| RunError::Mem { pc, err })?;
        let insn = decode(word).map_err(|err| RunError::Decode { pc, err })?;
        let d = Predecoded::prepare(insn, features);
        self.slots.make_owned()[(pc >> 2) as usize] = Some(d);
        self.prepared += 1;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{encode, Cond, Reg};

    fn features() -> MbFeatures {
        MbFeatures::paper_default()
    }

    #[test]
    fn caches_and_invalidates_on_write() {
        let mut imem = Bram::new(64);
        let add = Insn::addk(Reg::R1, Reg::R2, Reg::R3);
        imem.write_word(0, encode(&add)).unwrap();
        let mut cache = DecodeCache::new();
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, add);
        // Cached: same answer without consulting the word again.
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, add);

        // A write anywhere in imem invalidates; the new word decodes.
        let xor = Insn::Xor { rd: Reg::R4, ra: Reg::R5, rb: Reg::R6 };
        imem.write_word(0, encode(&xor)).unwrap();
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, xor);
    }

    #[test]
    fn prepared_fields_match_the_lazy_derivations() {
        for insn in [
            Insn::addk(Reg::R1, Reg::R2, Reg::R3),
            Insn::mul(Reg::R1, Reg::R2, Reg::R3),
            Insn::lwi(Reg::R1, Reg::R2, 4),
            Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: false },
            Insn::Bri { rd: Reg::R0, imm: 8, link: false, absolute: false, delay: true },
            Insn::ret(),
            Insn::Imm { imm: 7 },
        ] {
            let d = Predecoded::prepare(insn, &MbFeatures::minimal());
            assert_eq!(d.class, insn.class(), "{insn}");
            assert_eq!(d.lat_not_taken, insn_latency(&insn), "{insn}");
            if d.class == OpClass::Branch {
                assert_eq!(d.lat_taken, branch_latency(&insn, true), "{insn}");
            } else {
                assert_eq!(d.lat_taken, insn_latency(&insn), "{insn}");
            }
            assert_eq!(d.supported, MbFeatures::minimal().supports(&insn), "{insn}");
            assert_eq!(d.control_flow, insn.is_control_flow(), "{insn}");
        }
    }

    #[test]
    fn logged_bram_invalidates_only_the_patched_slots() {
        let mut imem = Bram::new(64).with_write_log();
        for w in 0..4u32 {
            imem.write_word(w * 4, encode(&Insn::addk(Reg::R1, Reg::R2, Reg::R3))).unwrap();
        }
        let mut cache = DecodeCache::new();
        for w in 0..4u32 {
            cache.fetch(&imem, &features(), w * 4).unwrap();
        }
        let prepared = cache.prepared;

        // Patch one word: only that slot re-decodes.
        let xor = Insn::Xor { rd: Reg::R4, ra: Reg::R5, rb: Reg::R6 };
        imem.write_word(0, encode(&xor)).unwrap();
        for w in 0..4u32 {
            cache.fetch(&imem, &features(), w * 4).unwrap();
        }
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, xor);
        assert_eq!(cache.prepared, prepared + 1, "incremental invalidation must spare the rest");
    }

    #[test]
    fn unlogged_bram_falls_back_to_a_full_flush() {
        let mut imem = Bram::new(64);
        let add = Insn::addk(Reg::R1, Reg::R2, Reg::R3);
        for w in 0..4u32 {
            imem.write_word(w * 4, encode(&add)).unwrap();
        }
        let mut cache = DecodeCache::new();
        for w in 0..4u32 {
            cache.fetch(&imem, &features(), w * 4).unwrap();
        }
        let prepared = cache.prepared;
        imem.write_word(0, encode(&add)).unwrap();
        for w in 0..4u32 {
            cache.fetch(&imem, &features(), w * 4).unwrap();
        }
        assert_eq!(cache.prepared, prepared + 4, "no write log: the whole table refills");
    }

    #[test]
    fn shared_slots_serve_fetches_and_detach_on_patch() {
        let mut imem = Bram::new(64).with_write_log();
        let add = Insn::addk(Reg::R1, Reg::R2, Reg::R3);
        imem.write_word(0, encode(&add)).unwrap();
        let mut warm = DecodeCache::new();
        warm.fetch(&imem, &features(), 0).unwrap();
        warm.sync(&imem);
        let table = warm.freeze();

        let mut cache = DecodeCache::new();
        cache.attach_shared(Arc::clone(&table), imem.generation());
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, add);
        assert_eq!(cache.prepared, 0, "a shared table must serve without slow-path decodes");

        // A patch detaches this cache's private copy; the frozen table
        // (and every sibling attached to it) keeps the original slot.
        let xor = Insn::Xor { rd: Reg::R4, ra: Reg::R5, rb: Reg::R6 };
        imem.write_word(0, encode(&xor)).unwrap();
        assert_eq!(cache.fetch(&imem, &features(), 0).unwrap().insn, xor);
        assert_eq!(cache.prepared, 1, "only the patched slot re-decodes");
        assert_eq!(table[0].map(|d| d.insn), Some(add), "the frozen table must never change");
    }

    #[test]
    fn faults_match_direct_decode() {
        let imem = Bram::new(16);
        let mut cache = DecodeCache::new();
        assert!(matches!(cache.fetch(&imem, &features(), 2), Err(RunError::Mem { pc: 2, .. })));
        assert!(matches!(cache.fetch(&imem, &features(), 64), Err(RunError::Mem { pc: 64, .. })));
    }
}
