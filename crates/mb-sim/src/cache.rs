//! Set-associative cache model with LRU replacement.
//!
//! Used for the MicroBlaze's optional instruction/data caches and reused
//! by the ARM hard-core baseline models in `arm-sim`.

/// Geometry and miss cost of a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// A small embedded-class cache: 8 KiB, 16-byte lines, 2-way,
    /// 10-cycle miss penalty.
    #[must_use]
    pub fn small() -> Self {
        CacheConfig { size_bytes: 8 * 1024, line_bytes: 16, ways: 2, miss_penalty: 10 }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u32 {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters for a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 1.0 for an unused cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Debug)]
struct CacheLine {
    tag: u32,
    valid: bool,
    /// Lower value = more recently used.
    lru: u32,
}

/// A set-associative cache with true-LRU replacement.
///
/// The model tracks hits and misses only (no dirty/writeback modeling);
/// stores are treated as write-allocate.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<CacheLine>,
    stats: CacheStats,
    tick: u32,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let n = (config.sets() * config.ways) as usize;
        Cache {
            config,
            lines: vec![CacheLine { tag: 0, valid: false, lru: 0 }; n],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Simulates one access; returns the extra cycles charged
    /// (0 on hit, `miss_penalty` on miss).
    pub fn access(&mut self, addr: u32) -> u32 {
        self.tick = self.tick.wrapping_add(1);
        let line_addr = addr / self.config.line_bytes;
        let set = line_addr % self.config.sets();
        let tag = line_addr / self.config.sets();
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;

        // Hit?
        for i in base..base + ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].lru = self.tick;
                self.stats.hits += 1;
                return 0;
            }
        }

        // Miss: fill LRU way.
        self.stats.misses += 1;
        let victim = (base..base + ways)
            .min_by_key(|&i| if self.lines[i].valid { self.lines[i].lru } else { 0 })
            .expect("cache has at least one way");
        self.lines[victim] = CacheLine { tag, valid: true, lru: self.tick };
        self.config.miss_penalty
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 16 bytes, direct mapped.
        Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 1, miss_penalty: 7 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x00), 7);
        assert_eq!(c.access(0x04), 0); // same line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = tiny();
        // 0x00 and 0x40 map to the same set (4 sets × 16 bytes).
        assert_eq!(c.access(0x00), 7);
        assert_eq!(c.access(0x40), 7);
        assert_eq!(c.access(0x00), 7); // evicted
    }

    #[test]
    fn associativity_absorbs_conflicts() {
        let mut c =
            Cache::new(CacheConfig { size_bytes: 128, line_bytes: 16, ways: 2, miss_penalty: 7 });
        // Two addresses mapping to the same set now coexist.
        assert_eq!(c.access(0x00), 7);
        assert_eq!(c.access(0x40), 7);
        assert_eq!(c.access(0x00), 0);
        assert_eq!(c.access(0x40), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c =
            Cache::new(CacheConfig { size_bytes: 32, line_bytes: 16, ways: 2, miss_penalty: 1 });
        // One set, two ways.
        c.access(0x00); // A
        c.access(0x10); // B
        c.access(0x00); // touch A
        c.access(0x20); // C evicts B
        assert_eq!(c.access(0x00), 0, "A must still be resident");
        assert_eq!(c.access(0x10), 1, "B was evicted");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0), 7);
    }

    #[test]
    fn hit_rate_of_unused_cache_is_one() {
        assert!((tiny().stats().hit_rate() - 1.0).abs() < f64::EPSILON);
    }
}
