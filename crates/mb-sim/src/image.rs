//! Frozen, shareable per-program artifacts.
//!
//! A serving fleet runs thousands of sessions of the *same* program:
//! the instruction words, the pre-decoded slot table, and the
//! block/trace store are pure functions of the program bytes and the
//! machine configuration, yet every fresh [`System`] used to rebuild
//! all three from scratch. A [`ProgramImage`] captures them once from a
//! warmed system and lets any number of sibling systems attach them as
//! read-only shared views.
//!
//! Sharing is copy-on-patch, not read-only-forever: the first `imem`
//! write of an attached system (the DPM hot-patching the running
//! binary) detaches a private copy of the words, and the derived
//! stores detach on their first post-patch invalidation — so a warping
//! session never perturbs its siblings, and execution is bit-identical
//! to a system that owned private stores all along (the stores'
//! contents are identical; only the storage is shared).
//!
//! [`System`]: crate::System

use std::sync::Arc;

use crate::block::Tables;
use crate::predecode::Predecoded;

/// The immutable per-program artifacts many [`System`]s share: program
/// words, pre-decoded slots, and built block/trace tables, frozen at
/// one instruction-memory generation.
///
/// Capture with [`System::capture_image`] from a system that has been
/// prewarmed and run to completion (so the block tables hold the
/// *learned* shapes — OPB splits included); attach to fresh or recycled
/// systems with [`System::attach_image`]. The image must only be
/// attached to systems with the same configuration it was captured
/// under — the slot latencies and block shapes bake in the feature set
/// and trace-chaining flag.
///
/// Cloning is cheap (three `Arc`s), and the image is `Send + Sync`: a
/// fleet-wide image store hands the same image to every worker.
///
/// [`System`]: crate::System
/// [`System::capture_image`]: crate::System::capture_image
/// [`System::attach_image`]: crate::System::attach_image
#[derive(Clone, Debug)]
pub struct ProgramImage {
    pub(crate) entry_pc: u32,
    pub(crate) generation: u64,
    pub(crate) words: Arc<Vec<u32>>,
    pub(crate) slots: Arc<Vec<Option<Predecoded>>>,
    pub(crate) tables: Arc<Tables>,
}

impl ProgramImage {
    /// The PC execution starts at (the program's base address).
    #[must_use]
    pub fn entry_pc(&self) -> u32 {
        self.entry_pc
    }

    /// The captured instruction words (the whole BRAM, padding included).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use mb_isa::{Assembler, Insn, Reg};

    use crate::{MbConfig, NullSink, System, EXIT_PORT_BASE};

    fn counting_program(iters: i32) -> mb_isa::Program {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, iters);
        a.label("loop");
        a.push(Insn::addik(Reg::R4, Reg::R4, 3));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        a.finish().unwrap()
    }

    /// Builds an image the way a session pool does: load, prewarm, run
    /// a full warm pass (learning the OPB split at the exit store),
    /// re-prewarm (the learn invalidated the exit-sequence block), then
    /// capture.
    fn build_image(program: &mb_isa::Program) -> (System, crate::ProgramImage) {
        let mut warm = System::new(MbConfig::paper_default());
        warm.load_program(program).unwrap();
        warm.prewarm();
        warm.run(1_000_000).unwrap();
        warm.prewarm();
        let image = warm.capture_image(program.base);
        (warm, image)
    }

    #[test]
    fn attached_systems_run_bit_identically_to_private_stores() {
        let program = counting_program(50);
        let mut reference = System::new(MbConfig::paper_default());
        reference.load_program(&program).unwrap();
        let expected = reference.run(1_000_000).unwrap();
        assert!(expected.exited());

        let (_warm, image) = build_image(&program);
        let mut sys = System::new(MbConfig::paper_default());
        sys.attach_image(&image);
        assert!(sys.imem().is_shared());
        let out = sys.run(1_000_000).unwrap();
        assert_eq!(out, expected, "shared-image run must match the private-store run");
        assert_eq!(sys.stats(), reference.stats());
        assert_eq!(sys.cpu().reg(Reg::R4), reference.cpu().reg(Reg::R4));
        assert!(sys.imem().is_shared(), "an unpatched run must never detach the words");
    }

    #[test]
    fn sliced_shared_image_run_matches_monolithic() {
        let program = counting_program(40);
        let (_warm, image) = build_image(&program);

        let mut mono = System::new(MbConfig::paper_default());
        mono.attach_image(&image);
        let expected = mono.run(1_000_000).unwrap();

        let mut sliced = System::new(MbConfig::paper_default());
        sliced.attach_image(&image);
        let mut cycles = 0u64;
        loop {
            let out = sliced.run_slice(7, &mut NullSink).unwrap();
            cycles += out.cycles;
            if out.exited() {
                break;
            }
        }
        assert_eq!(cycles, expected.cycles);
        assert_eq!(sliced.stats(), mono.stats());
    }

    #[test]
    fn patching_one_sibling_never_perturbs_the_other() {
        let program = counting_program(30);
        let (_warm, image) = build_image(&program);

        let mut patched = System::new(MbConfig::paper_default());
        patched.attach_image(&image);
        let mut sibling = System::new(MbConfig::paper_default());
        sibling.attach_image(&image);

        // Hot-patch the loop body in one sibling: addik r4, r4, 3
        // becomes addik r4, r4, 5.
        let pc = 4;
        patched
            .imem_mut()
            .write_word(pc, mb_isa::encode(&Insn::addik(Reg::R4, Reg::R4, 5)))
            .unwrap();
        assert!(!patched.imem().is_shared(), "the patch must detach a private copy");
        assert!(sibling.imem().is_shared(), "the sibling must keep the shared view");

        let out_patched = patched.run(1_000_000).unwrap();
        assert!(out_patched.exited());
        assert_eq!(patched.cpu().reg(Reg::R4), 150, "patched run sums 5s");

        // The sibling still executes the original program, identical to
        // a fresh private-store system.
        let mut reference = System::new(MbConfig::paper_default());
        reference.load_program(&program).unwrap();
        let expected = reference.run(1_000_000).unwrap();
        let out_sibling = sibling.run(1_000_000).unwrap();
        assert_eq!(out_sibling, expected);
        assert_eq!(sibling.cpu().reg(Reg::R4), 90, "sibling still sums 3s");
        assert_eq!(sibling.stats(), reference.stats());
        assert_eq!(image.words()[1], mb_isa::encode(&Insn::addik(Reg::R4, Reg::R4, 3)));
    }

    #[test]
    fn recycled_system_reruns_bit_identically() {
        let program = counting_program(25);
        let (_warm, image) = build_image(&program);

        let mut sys = System::new(MbConfig::paper_default());
        sys.attach_image(&image);
        let first = sys.run(1_000_000).unwrap();
        let first_r4 = sys.cpu().reg(Reg::R4);
        let first_stats = sys.stats().clone();
        assert_eq!(sys.halted(), Some(0));

        // Recycle in place: reset run state, keep the attached image.
        sys.reset_run_state(image.entry_pc());
        assert_eq!(sys.halted(), None, "reset must clear the exit latch");
        assert!(sys.imem().is_shared(), "reset must not detach the image");
        let second = sys.run(1_000_000).unwrap();
        assert_eq!(second, first);
        assert_eq!(sys.cpu().reg(Reg::R4), first_r4);
        assert_eq!(sys.stats(), &first_stats);
    }
}
