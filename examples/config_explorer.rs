//! Configuration explorer: the paper's Section 2 study, interactively.
//!
//! Builds every benchmark under all four barrel-shifter/multiplier
//! configurations and reports the execution-time impact — the trade-off
//! a designer makes when excluding optional units to save configurable
//! logic.
//!
//! ```sh
//! cargo run --release --example config_explorer
//! ```

use mb_isa::MbFeatures;
use mb_sim::MbConfig;

fn main() {
    let configs = [
        ("bs + mul", MbFeatures::paper_default()),
        ("mul only", MbFeatures::paper_default().with_barrel_shifter(false)),
        ("bs only", MbFeatures::paper_default().with_multiplier(false)),
        ("neither", MbFeatures::minimal()),
    ];

    println!("execution cycles per configuration (slowdown vs. bs+mul)\n");
    print!("{:>9}", "benchmark");
    for (name, _) in &configs {
        print!(" | {name:>18}");
    }
    println!();
    println!("{}", "-".repeat(9 + configs.len() * 21));

    for workload in workloads::all() {
        print!("{:>9}", workload.name);
        let mut base = 0u64;
        for (_, features) in &configs {
            let built = workload.build(*features);
            let mut sys = built.instantiate(&MbConfig::paper_default());
            let outcome = sys.run(2_000_000_000).expect("benchmark runs");
            built.verify(sys.dmem()).expect("results stay correct in every configuration");
            if base == 0 {
                base = outcome.cycles;
            }
            print!(" | {:>10} ({:>4.2}x)", outcome.cycles, outcome.cycles as f64 / base as f64);
        }
        println!();
    }

    println!("\npaper reference points: brev 2.1x slower with neither unit;");
    println!("matmul 1.3x slower without the multiplier.");
}
