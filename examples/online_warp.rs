//! Online warping: watch the runtime profile, warp, and hot-patch a
//! program *while it runs* — then re-warp when the hot loop moves.
//!
//! ```sh
//! cargo run --release --example online_warp
//! ```

use mb_isa::MbFeatures;
use warp_online::{NeverPolicy, OnlineConfig, Orchestrator, ThresholdPolicy, TopKPolicy};

fn main() {
    // Part 1: a single-kernel workload, executed three times on one
    // timeline. The profiler detects the kernel mid-first-run, the
    // OCPM's CAD budget elapses in simulated time, the binary is
    // patched mid-run, and later runs start warped.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let config = OnlineConfig { repeats: 3, ..OnlineConfig::default() };

    println!("online-warping `brev` (3 repeats on one timeline)");
    let report = Orchestrator::new(&built, config.clone())
        .with_policy(TopKPolicy { k: 1, min_count: 512 })
        .run()
        .expect("online run succeeds");
    let software = Orchestrator::new(&built, config)
        .with_policy(NeverPolicy)
        .run()
        .expect("software-only arm succeeds");

    print!("{report}");
    let event = &report.events[0];
    println!("  CAD ran concurrently: {} lean-processor cycles on the timeline", event.cad_cycles);
    println!(
        "  hardware: {} invocations, {} iterations ({} cycles/iteration on the fabric)",
        event.hw.invocations, event.hw.iterations, event.model.cycles_per_iteration
    );
    println!(
        "  online {} cycles vs software-only {} cycles -> {:.2}x end-to-end\n",
        report.cycles,
        software.cycles,
        report.speedup_vs(software.cycles)
    );

    // Part 2: the phased workload — its hot loop *moves* mid-run,
    // twice. The decaying profiler notices, the sitting circuit is
    // evicted, and the runtime re-warps to the new kernel; the A → A'
    // re-warp reuses phase A's mapped clusters and placement, so its
    // CAD charge is a fraction of a from-scratch compile.
    let phased = workloads::phased::build_scaled(MbFeatures::paper_default(), 300, 150, 700);
    let config = OnlineConfig { decay_interval: 8, ..OnlineConfig::default() };

    println!("online-warping `phased` (hot loop shifts mid-run)");
    let report = Orchestrator::new(&phased, config.clone())
        .with_policy(ThresholdPolicy { min_count: 3000 })
        .run()
        .expect("phased online run succeeds");
    let software = Orchestrator::new(&phased, config)
        .with_policy(NeverPolicy)
        .run()
        .expect("phased software arm succeeds");

    print!("{report}");
    println!(
        "  profiler: {} decay passes, {} entries decayed away",
        report.profiler.decays, report.profiler.decay_evictions
    );
    println!(
        "  online {} cycles vs software-only {} cycles -> {:.2}x end-to-end",
        report.cycles,
        software.cycles,
        report.speedup_vs(software.cycles)
    );
}
