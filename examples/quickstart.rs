//! Quickstart: warp one benchmark end-to-end and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mb_isa::MbFeatures;
use warp_core::pipeline::run_staged;
use warp_core::WarpOptions;

fn main() {
    // Pick the paper's headline benchmark: bit reversal.
    let workload = workloads::by_name("brev").expect("brev is built in");
    let built = workload.build(MbFeatures::paper_default());

    println!("warping `{}` — {}", built.name, workload.description);
    let measurement =
        run_staged(&built, &WarpOptions::default(), None).expect("warp flow succeeds");
    let report = measurement.report;

    println!();
    println!(
        "software-only:   {:>10} cycles  ({:.3} ms at 85 MHz)",
        report.sw_cycles,
        report.sw_seconds * 1e3
    );
    println!(
        "warped:          {:>10} cycles  ({:.3} ms)",
        report.warped_cycles,
        report.warped_seconds * 1e3
    );
    println!("  MB active:     {:>10} cycles", report.mb_active_cycles);
    println!("  MB stalled:    {:>10} cycles (hardware running)", report.mb_stall_cycles);
    println!();
    println!(
        "hardware:        {} invocations, {} iterations, {} fabric cycles",
        report.hw.invocations, report.hw.iterations, report.hw.fabric_cycles
    );
    println!(
        "circuit:         {} LUTs, {} FFs, {} MACs, {:.1} ns critical path",
        report.map_stats.luts,
        report.map_stats.ffs,
        report.map_stats.macs,
        report.timing.critical_path_ns
    );
    println!("bitstream:       {} bytes", report.bitstream_bytes);
    println!(
        "on-chip CAD:     {:.3} s on the 85 MHz DPM, {:.0} KiB peak",
        report.dpm_seconds(),
        report.dpm.peak_memory_bytes as f64 / 1024.0
    );
    println!("pipeline:        {}", measurement.stats);
    println!();
    println!("speedup:          {:.1}x   (paper: 16.9x for brev)", report.speedup());
    println!("energy reduction: {:.0}%   (paper: 94% for brev)", report.energy_reduction() * 100.0);
    println!("profiler found the annotated kernel: {}", report.profiler_agrees);
}
