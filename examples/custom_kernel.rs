//! Bring your own binary: write a program with the assembler, let the
//! warp processor find, partition, and accelerate its kernel.
//!
//! This is the downstream-user path: no `workloads` involvement — just
//! a binary, the profiler, and the CAD chain, exactly as warp processing
//! promises ("dynamically and transparently re-implementing critical
//! software kernels as custom circuits").
//!
//! The kernel here computes a saturating luminance mix over two pixel
//! streams: `out[i] = (a[i] & 0x00FF00FF) + (b[i] >> 1) ^ 0x0F0F0F0F`.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use mb_isa::{Assembler, Insn, Reg};
use mb_sim::{MbConfig, System, EXIT_PORT_BASE};
use warp_profiler::{Profiler, ProfilerConfig};
use warp_wcla::device::WCLA_WINDOW;
use warp_wcla::patch::{apply_patch, stub_base_for, PatchPlan};
use warp_wcla::{WclaCircuit, WclaDevice, WCLA_BASE};

const N: i32 = 1024;
const A_ADDR: u32 = 0x1000;
const B_ADDR: u32 = 0x2000;
const OUT_ADDR: u32 = 0x3000;

fn build_program() -> mb_isa::Program {
    let mut a = Assembler::new(0);
    a.equ("a", A_ADDR).unwrap();
    a.equ("b", B_ADDR).unwrap();
    a.equ("out", OUT_ADDR).unwrap();

    a.la(Reg::R5, "a");
    a.la(Reg::R6, "b");
    a.la(Reg::R7, "out");
    a.li(Reg::R4, N);
    a.label("mix_loop");
    a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
    a.push(Insn::Imm { imm: 0x00FF });
    a.push(Insn::Andi { rd: Reg::R9, ra: Reg::R9, imm: 0x00FF });
    a.push(Insn::lwi(Reg::R10, Reg::R6, 0));
    a.push(Insn::bsrli(Reg::R10, Reg::R10, 1));
    a.push(Insn::addk(Reg::R9, Reg::R9, Reg::R10));
    a.push(Insn::Imm { imm: 0x0F0F });
    a.push(Insn::Xori { rd: Reg::R9, ra: Reg::R9, imm: 0x0F0F });
    a.push(Insn::swi(Reg::R9, Reg::R7, 0));
    a.push(Insn::addik(Reg::R5, Reg::R5, 4));
    a.push(Insn::addik(Reg::R6, Reg::R6, 4));
    a.push(Insn::addik(Reg::R7, Reg::R7, 4));
    a.push(Insn::addik(Reg::R4, Reg::R4, -1));
    a.bnei(Reg::R4, "mix_loop");
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    a.finish().expect("program assembles")
}

fn pixels(seed: u32) -> Vec<u32> {
    let mut x = seed;
    (0..N)
        .map(|_| {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            x
        })
        .collect()
}

fn main() {
    let program = build_program();
    let a = pixels(7);
    let b = pixels(99);

    // 1. Run in software, gathering the trace the on-chip profiler sees.
    let mut sys = System::new(MbConfig::paper_default());
    sys.load_program(&program).unwrap();
    sys.load_data(A_ADDR, &a).unwrap();
    sys.load_data(B_ADDR, &b).unwrap();
    let (sw, trace) = sys.run_traced(100_000_000).unwrap();
    println!("software run: {} cycles", sw.cycles);

    // 2. Profile: the hottest backward branch closes our mix loop.
    let mut profiler = Profiler::new(ProfilerConfig::paper_default());
    profiler.observe_trace(&trace);
    let hot = profiler.best().expect("a loop was observed");
    println!("profiler: hottest loop {hot}");

    // 3. ROCPART: decompile and compile to the WCLA.
    let kernel = warp_cdfg::decompile_loop(&program, hot.head, hot.tail)
        .expect("the loop is regular enough for the WCLA");
    let (circuit, _) = WclaCircuit::build(kernel).expect("kernel fits the fabric");
    println!(
        "circuit: {} LUTs, {:.1} ns critical path, {} B bitstream",
        circuit.netlist.lut_count(),
        circuit.compiled.timing.critical_path_ns,
        circuit.compiled.bitstream.len_bytes()
    );

    // 4. Patch the binary and re-run with the WCLA device.
    let head_word = program.word_at(circuit.kernel.head).unwrap();
    let plan = PatchPlan::new(
        &circuit.kernel,
        head_word,
        stub_base_for(program.end()),
        circuit.kernel.tail + 4,
    )
    .expect("stub builds");
    let mut warped = System::new(MbConfig::paper_default());
    warped.load_program(&program).unwrap();
    warped.load_data(A_ADDR, &a).unwrap();
    warped.load_data(B_ADDR, &b).unwrap();
    let (device, _) = WclaDevice::new(circuit, 85_000_000);
    warped.map_peripheral(WCLA_BASE, WCLA_WINDOW, Box::new(device));
    apply_patch(warped.imem_mut(), &plan).unwrap();
    let hw = warped.run(100_000_000).unwrap();
    println!("warped run:   {} cycles", hw.cycles);

    // 5. Verify against the obvious Rust model.
    for i in 0..N as usize {
        let want = ((a[i] & 0x00FF_00FF).wrapping_add(b[i] >> 1)) ^ 0x0F0F_0F0F;
        let got = warped.dmem().read_word(OUT_ADDR + 4 * i as u32).unwrap();
        assert_eq!(got, want, "pixel {i}");
    }
    println!("verified: hardware output matches the Rust model");
    println!("speedup: {:.1}x", sw.cycles as f64 / hw.cycles as f64);
}
