//! Multi-processor warp system (paper Figure 4): several MicroBlaze
//! soft cores on one FPGA, each with its own profiler and WCLA
//! datapath, warped one at a time by a single shared dynamic
//! partitioning module.
//!
//! ```sh
//! cargo run --release --example multiprocessor
//! ```

use warp_core::multi::multi_warp;
use warp_core::WarpOptions;

fn main() {
    // A four-processor system running a mix of kernels.
    let names = ["brev", "canrdr", "matmul", "crc32"];
    let apps: Vec<workloads::Workload> =
        names.iter().map(|n| workloads::by_name(n).expect("known workload")).collect();

    println!("four-processor warp system, one shared DPM (round-robin)\n");
    let report = multi_warp(&apps, &WarpOptions::default()).expect("system warps");

    println!(
        "{:>10} | {:>9} | {:>11} | {:>12} | {:>10}",
        "processor", "speedup", "energy red.", "HW ready at", "bitstream"
    );
    println!("{}", "-".repeat(66));
    for app in &report.apps {
        println!(
            "{:>10} | {:>8.2}x | {:>10.0}% | {:>10.3} s | {:>8} B",
            app.name,
            app.report.speedup(),
            app.report.energy_reduction() * 100.0,
            app.dpm_ready_at_s,
            app.report.bitstream_bytes,
        );
    }
    println!();
    println!("aggregate steady-state speedup: {:.2}x", report.aggregate_speedup());
    println!(
        "one DPM serves all {} processors in {:.3} s of CAD work — \
         no per-processor DPM needed",
        report.apps.len(),
        report.total_dpm_seconds()
    );
}
